//! End-to-end key-value tests: one client, one server, real frames on a
//! simulated wire, for every serialization kind.

use cf_mem::PoolConfig;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::client::{client_server_pair, KvClient};
use cf_kv::server::{KvServer, SerKind};
use cf_kv::store::KvStore;

fn pair(kind: SerKind) -> (KvClient, KvServer) {
    client_server_pair(
        Sim::new(MachineProfile::tiny_for_tests()),
        kind,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    )
}

fn run_get(kind: SerKind) {
    let (mut client, mut server) = pair(kind);
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[2048])
        .unwrap();
    server
        .store
        .preload(server.stack.ctx(), b"key-b", &[100])
        .unwrap();

    let id = client.send_get(&[b"key-a", b"key-b"]);
    assert_eq!(server.poll(), 1);
    let resp = client.recv_response().expect("response");
    assert_eq!(resp.id, Some(id), "{kind:?}");
    assert_eq!(resp.vals.len(), 2, "{kind:?}");
    assert_eq!(resp.vals[0].len(), 2048);
    assert_eq!(resp.vals[0][0], KvStore::expected_fill(b"key-a", 0));
    assert_eq!(resp.vals[1].len(), 100);
    assert_eq!(resp.vals[1][0], KvStore::expected_fill(b"key-b", 0));
}

#[test]
fn get_roundtrip_all_serializers() {
    for kind in SerKind::all() {
        run_get(kind);
    }
}

fn run_put_then_get(kind: SerKind) {
    let (mut client, mut server) = pair(kind);
    let value = vec![0x3Au8; 1500];
    client.send_put(b"newkey", &value);
    server.poll();
    let _ack = client.recv_response().expect("put ack");

    client.send_get(&[b"newkey"]);
    server.poll();
    let resp = client.recv_response().expect("get response");
    assert_eq!(resp.vals.len(), 1, "{kind:?}");
    assert_eq!(resp.vals[0], value, "{kind:?}");
}

#[test]
fn put_then_get_all_serializers() {
    for kind in SerKind::all() {
        run_put_then_get(kind);
    }
}

fn run_list_value(kind: SerKind) {
    let (mut client, mut server) = pair(kind);
    // A "linked list" value: three non-contiguous segments.
    server
        .store
        .preload(server.stack.ctx(), b"list", &[700, 700, 700])
        .unwrap();
    client.send_get(&[b"list"]);
    server.poll();
    let resp = client.recv_response().expect("response");
    assert_eq!(resp.vals.len(), 3, "{kind:?}");
    for (i, v) in resp.vals.iter().enumerate() {
        assert_eq!(v.len(), 700);
        assert_eq!(v[0], KvStore::expected_fill(b"list", i), "{kind:?}");
    }
}

#[test]
fn list_values_all_serializers() {
    for kind in SerKind::all() {
        run_list_value(kind);
    }
}

fn run_get_segment(kind: SerKind) {
    let (mut client, mut server) = pair(kind);
    server
        .store
        .preload(server.stack.ctx(), b"seg", &[4096, 4096, 1000])
        .unwrap();
    client.send_get_segment(b"seg", 2);
    server.poll();
    let resp = client.recv_response().expect("response");
    assert_eq!(resp.vals.len(), 1, "{kind:?}");
    assert_eq!(resp.vals[0].len(), 1000);
    assert_eq!(resp.vals[0][0], KvStore::expected_fill(b"seg", 2));
}

#[test]
fn get_segment_all_serializers() {
    for kind in SerKind::all() {
        run_get_segment(kind);
    }
}

#[test]
fn missing_key_returns_empty() {
    for kind in SerKind::all() {
        let (mut client, mut server) = pair(kind);
        client.send_get(&[b"absent"]);
        server.poll();
        let resp = client.recv_response().expect("response");
        assert!(resp.vals.is_empty(), "{kind:?}");
    }
}

#[test]
fn cornflakes_zero_copies_large_values_only() {
    let (mut client, mut server) = pair(SerKind::Cornflakes);
    server
        .store
        .preload(server.stack.ctx(), b"big", &[2048])
        .unwrap();
    server
        .store
        .preload(server.stack.ctx(), b"small", &[64])
        .unwrap();

    client.send_get(&[b"big"]);
    server.poll();
    client.recv_response().unwrap();
    let sg_after_big = server.stack.nic_stats().tx_sg_entries;
    assert_eq!(
        sg_after_big, 2,
        "large value response = first entry + one zero-copy entry"
    );

    client.send_get(&[b"small"]);
    server.poll();
    client.recv_response().unwrap();
    let sg_small = server.stack.nic_stats().tx_sg_entries - sg_after_big;
    assert_eq!(sg_small, 1, "small value is copied into the first entry");
}

#[test]
fn put_under_memory_pressure_degrades_instead_of_panicking() {
    use cf_kv::flags;
    use cf_telemetry::Telemetry;

    for kind in SerKind::all() {
        let server_sim = Sim::new(MachineProfile::tiny_for_tests());
        let (mut client, mut server) = client_server_pair(
            server_sim.clone(),
            kind,
            SerializationConfig::hybrid(),
            PoolConfig::small_for_tests(),
        );
        let tele = Telemetry::attach(&server_sim);
        server.set_telemetry(&tele);
        // Stored segments land in the 1024 B size class; request frames use
        // the 2048 B class and replies the smallest, so only the *store*
        // side feels the pressure.
        server.put_segment_size = 600;
        server
            .store
            .preload(server.stack.ctx(), b"k", &[600])
            .unwrap();
        let mut filler = 0u32;
        while server
            .store
            .preload(
                server.stack.ctx(),
                format!("filler-{filler}").as_bytes(),
                &[600],
            )
            .is_ok()
        {
            filler += 1;
        }
        let exhausted_before = tele.counter_value("mem.pool.exhausted");

        // The put cannot allocate its segments: the server must answer with
        // a degraded reply, not crash, and the old value must survive.
        client.send_put(b"k", &vec![0x5Cu8; 1500]);
        server.poll();
        let resp = client.recv_response().expect("degraded ack");
        assert_eq!(resp.flags, flags::DEGRADED, "{kind:?}");
        assert_eq!(server.degraded_replies(), 1, "{kind:?}");
        assert_eq!(server.puts_applied(), 0, "{kind:?}");
        assert!(
            tele.counter_value("mem.pool.exhausted") > exhausted_before,
            "{kind:?}: exhaustion surfaced in metrics"
        );

        // While the class is saturated, copy-based serializers cannot even
        // allocate the GET reply — the reply is dropped, not panicked on.
        // Deleting one filler frees a slot and service resumes.
        assert!(server.store.remove(b"filler-0").is_some());
        client.send_get(&[b"k"]);
        server.poll();
        let resp = client
            .recv_response()
            .unwrap_or_else(|| panic!("get response after degraded put, {kind:?}"));
        assert_eq!(resp.vals.len(), 1, "{kind:?}");
        assert_eq!(
            resp.vals[0][0],
            KvStore::expected_fill(b"k", 0),
            "{kind:?}: old value intact after failed put"
        );
    }
}

#[test]
fn cornflakes_service_time_beats_baselines_on_large_values() {
    // The headline effect: serving a 4 KiB value should cost Cornflakes
    // materially less virtual time per request than the copy-based
    // baselines.
    let mut costs = Vec::new();
    for kind in SerKind::all() {
        let server_sim = Sim::new(MachineProfile::tiny_for_tests());
        let (mut client, mut server) = client_server_pair(
            server_sim.clone(),
            kind,
            SerializationConfig::hybrid(),
            PoolConfig::small_for_tests(),
        );
        server
            .store
            .preload(server.stack.ctx(), b"val", &[4096])
            .unwrap();
        // Warm one request, measure the second.
        client.send_get(&[b"val"]);
        server.poll();
        client.recv_response().unwrap();
        let t0 = server_sim.now();
        client.send_get(&[b"val"]);
        server.poll();
        client.recv_response().unwrap();
        costs.push((kind, server_sim.now() - t0));
    }
    let cf = costs[0].1;
    for &(kind, c) in &costs[1..] {
        assert!(
            cf * 2 < c * 3, // cf < 1.5x faster at least... i.e. cf reasonably below
            "Cornflakes ({cf} ns) should beat {kind:?} ({c} ns)"
        );
        assert!(cf < c, "Cornflakes ({cf} ns) should beat {kind:?} ({c} ns)");
    }
}
