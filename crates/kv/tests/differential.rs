//! Differential serialization tests: one harness, every KV message-type
//! shape, every serialization system.
//!
//! Each canonical message (GET = keys only, PUT = keys+values,
//! GET_SEGMENT = index + key, RESPONSE = index + values) is serialized
//! through cornflakes and through all four `cf-baselines` systems
//! (protolite, flatlite, capnlite, resp), round-tripped, and the decoded
//! result compared field-by-field against the canonical input. Every
//! encoder is also run twice to pin byte determinism. This localizes
//! encoder/decoder drift that the end-to-end tests can only report as
//! "the reply was wrong".

#![allow(clippy::type_complexity)] // (id, keys, vals) tuples read better than one-off structs

use cf_mem::PoolConfig;
use cf_net::{FrameMeta, UdpStack};
use cf_nic::link;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::{CornflakesObj, SerializationConfig};

use cf_baselines::capnlite::{CapnGetM, CapnReader};
use cf_baselines::flatlite::{FlatGetM, FlatGetMView};
use cf_baselines::protolite::PGetM;
use cf_baselines::resp;

use cf_kv::msg_type;
use cf_kv::msgs::GetMsg;

/// A canonical GetM-shaped message, the shared input to every system.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CanonMsg {
    name: &'static str,
    msg_type: u8,
    id: Option<u32>,
    keys: Vec<Vec<u8>>,
    vals: Vec<Vec<u8>>,
}

/// One canonical message per KV message-type shape (see
/// `cf_kv::msg_type`): these are the exact field layouts the client and
/// server exchange for each request/response kind.
fn canonical_messages() -> Vec<CanonMsg> {
    let big: Vec<u8> = (0..2048u32).map(|i| (i * 7 + 3) as u8).collect();
    vec![
        CanonMsg {
            name: "get",
            msg_type: msg_type::GET,
            id: None,
            keys: vec![b"key-a".to_vec(), b"key-bbbb".to_vec(), b"k".to_vec()],
            vals: vec![],
        },
        CanonMsg {
            name: "put",
            msg_type: msg_type::PUT,
            id: None,
            keys: vec![b"fresh-key".to_vec()],
            vals: vec![big.clone()],
        },
        CanonMsg {
            name: "get_segment",
            msg_type: msg_type::GET_SEGMENT,
            id: Some(2),
            keys: vec![b"segmented-key".to_vec()],
            vals: vec![],
        },
        CanonMsg {
            name: "response",
            msg_type: msg_type::RESPONSE | msg_type::GET,
            id: Some(7),
            keys: vec![],
            vals: vec![vec![0x5Au8; 100], big, vec![]],
        },
    ]
}

fn refs(v: &[Vec<u8>]) -> Vec<&[u8]> {
    v.iter().map(Vec::as_slice).collect()
}

fn sim() -> Sim {
    Sim::new(MachineProfile::tiny_for_tests())
}

/// Serializes `msg` through a real cornflakes datapath — send it over a
/// simulated wire, decode it on the receiving stack, and return both the
/// raw payload bytes and the decoded (id, keys, vals) triple.
fn cornflakes_roundtrip(msg: &CanonMsg) -> (Vec<u8>, Option<u32>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let (ap, bp) = link();
    let mut tx = UdpStack::with_pool_config(
        sim(),
        ap,
        4000,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    let mut rx = UdpStack::with_pool_config(
        sim(),
        bp,
        9000,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    let mut obj = GetMsg::new();
    obj.id = msg.id.map(|i| i as i32);
    {
        let ctx = tx.ctx();
        for k in &msg.keys {
            obj.add_keys(ctx, k);
        }
        for v in &msg.vals {
            obj.add_vals(ctx, v);
        }
    }
    let meta = FrameMeta {
        msg_type: msg.msg_type,
        flags: 0,
        req_id: 1,
    };
    let hdr = tx.header_to(9000, meta);
    tx.send_object(hdr, &obj).expect("cornflakes send");
    let pkt = rx.recv_packet().expect("cornflakes recv");
    let decoded = GetMsg::deserialize(rx.ctx(), &pkt.payload).expect("cornflakes decode");
    (
        pkt.payload.to_vec(),
        decoded.id.map(|i| i as u32),
        decoded.keys.iter().map(|k| k.as_slice().to_vec()).collect(),
        decoded.vals.iter().map(|v| v.as_slice().to_vec()).collect(),
    )
}

#[test]
fn cornflakes_roundtrip_matches_canonical() {
    for msg in canonical_messages() {
        let (_, id, keys, vals) = cornflakes_roundtrip(&msg);
        assert_eq!(id, msg.id, "{}: id", msg.name);
        assert_eq!(keys, msg.keys, "{}: keys", msg.name);
        assert_eq!(vals, msg.vals, "{}: vals", msg.name);
    }
}

#[test]
fn cornflakes_encoding_is_deterministic() {
    for msg in canonical_messages() {
        let (a, ..) = cornflakes_roundtrip(&msg);
        let (b, ..) = cornflakes_roundtrip(&msg);
        assert_eq!(a, b, "{}: same message, same bytes", msg.name);
    }
}

fn protolite_encode(sim: &Sim, msg: &CanonMsg) -> Vec<u8> {
    let mut m = PGetM::new();
    m.id = msg.id;
    for k in &msg.keys {
        m.add_key(sim, k);
    }
    for v in &msg.vals {
        m.add_val(sim, v);
    }
    m.encode(sim, 0x1000)
}

#[test]
fn protolite_roundtrip_matches_canonical() {
    let sim = sim();
    for msg in canonical_messages() {
        let bytes = protolite_encode(&sim, &msg);
        assert_eq!(
            bytes,
            protolite_encode(&sim, &msg),
            "{}: deterministic encode",
            msg.name
        );
        let decoded = PGetM::decode(&sim, &bytes).expect("protolite decode");
        assert_eq!(decoded.id, msg.id, "{}: id", msg.name);
        assert_eq!(decoded.keys, msg.keys, "{}: keys", msg.name);
        assert_eq!(decoded.vals, msg.vals, "{}: vals", msg.name);
    }
}

fn flatlite_encode(sim: &Sim, msg: &CanonMsg) -> Vec<u8> {
    FlatGetM::encode(sim, msg.id, &refs(&msg.keys), &refs(&msg.vals))
}

#[test]
fn flatlite_roundtrip_matches_canonical() {
    let sim = sim();
    for msg in canonical_messages() {
        let bytes = flatlite_encode(&sim, &msg);
        assert_eq!(
            bytes,
            flatlite_encode(&sim, &msg),
            "{}: deterministic encode",
            msg.name
        );
        let view = FlatGetMView::parse(&sim, &bytes).expect("flatlite parse");
        assert_eq!(view.id().expect("id"), msg.id, "{}: id", msg.name);
        let keys: Vec<Vec<u8>> = (0..view.keys_len().expect("keys_len"))
            .map(|i| view.key(i).expect("key").to_vec())
            .collect();
        let vals: Vec<Vec<u8>> = (0..view.vals_len().expect("vals_len"))
            .map(|i| view.val(i).expect("val").to_vec())
            .collect();
        assert_eq!(keys, msg.keys, "{}: keys", msg.name);
        assert_eq!(vals, msg.vals, "{}: vals", msg.name);
    }
}

fn capnlite_encode(sim: &Sim, msg: &CanonMsg) -> Vec<u8> {
    let mut m = CapnGetM::new();
    if let Some(i) = msg.id {
        m.set_id(i);
    }
    for k in &msg.keys {
        m.add_key(sim, k);
    }
    for v in &msg.vals {
        m.add_val(sim, v);
    }
    CapnGetM::frame(&m.finish(sim))
}

#[test]
fn capnlite_roundtrip_matches_canonical() {
    let sim = sim();
    for msg in canonical_messages() {
        let bytes = capnlite_encode(&sim, &msg);
        assert_eq!(
            bytes,
            capnlite_encode(&sim, &msg),
            "{}: deterministic encode",
            msg.name
        );
        let reader = CapnReader::parse(&sim, &bytes).expect("capnlite parse");
        assert_eq!(reader.id().expect("id"), msg.id, "{}: id", msg.name);
        let keys: Vec<Vec<u8>> = reader
            .keys(&sim)
            .expect("keys")
            .iter()
            .map(|k| k.to_vec())
            .collect();
        let vals: Vec<Vec<u8>> = reader
            .vals(&sim)
            .expect("vals")
            .iter()
            .map(|v| v.to_vec())
            .collect();
        assert_eq!(keys, msg.keys, "{}: keys", msg.name);
        assert_eq!(vals, msg.vals, "{}: vals", msg.name);
    }
}

/// Encodes `msg` as a RESP array: `[id-or-nil, *keys, *vals]` bulks under
/// one array header, with the field counts carried out of band (RESP is
/// schemaless; the KV redis front end pins verb-specific layouts — this
/// pins the generic shape used here).
fn resp_encode(sim: &Sim, msg: &CanonMsg) -> Vec<u8> {
    let mut out = Vec::new();
    resp::push_array_header(sim, 1 + msg.keys.len() + msg.vals.len(), &mut out);
    match msg.id {
        Some(i) => resp::push_bulk(sim, &i.to_le_bytes(), &mut out, 0x1000),
        None => resp::push_nil(sim, &mut out),
    }
    for k in &msg.keys {
        resp::push_bulk(sim, k, &mut out, 0x1000);
    }
    for v in &msg.vals {
        resp::push_bulk(sim, v, &mut out, 0x1000);
    }
    out
}

#[test]
fn resp_roundtrip_matches_canonical() {
    let sim = sim();
    for msg in canonical_messages() {
        let bytes = resp_encode(&sim, &msg);
        assert_eq!(
            bytes,
            resp_encode(&sim, &msg),
            "{}: deterministic encode",
            msg.name
        );
        let (value, consumed) = resp::decode(&sim, &bytes).expect("resp decode");
        assert_eq!(consumed, bytes.len(), "{}: consumed all bytes", msg.name);
        let resp::RespValue::Array(items) = value else {
            panic!("{}: expected array", msg.name);
        };
        assert_eq!(
            items.len(),
            1 + msg.keys.len() + msg.vals.len(),
            "{}",
            msg.name
        );
        let id = match &items[0] {
            resp::RespValue::Nil => None,
            other => {
                let b = other.as_bulk().expect("id bulk");
                Some(u32::from_le_bytes(b.try_into().expect("4-byte id")))
            }
        };
        assert_eq!(id, msg.id, "{}: id", msg.name);
        let keys: Vec<Vec<u8>> = items[1..1 + msg.keys.len()]
            .iter()
            .map(|i| i.as_bulk().expect("key bulk").to_vec())
            .collect();
        let vals: Vec<Vec<u8>> = items[1 + msg.keys.len()..]
            .iter()
            .map(|i| i.as_bulk().expect("val bulk").to_vec())
            .collect();
        assert_eq!(keys, msg.keys, "{}: keys", msg.name);
        assert_eq!(vals, msg.vals, "{}: vals", msg.name);
    }
}

/// Sends one get through a client/server pair, optionally with admission
/// control enabled, and returns the raw reply frame plus decoded values.
fn reply_with_admission(kind: cf_kv::server::SerKind, admission: bool) -> (Vec<u8>, Vec<Vec<u8>>) {
    let (mut client, mut server) = cf_kv::client::client_server_pair(
        sim(),
        kind,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    if admission {
        server.enable_admission(cf_kv::overload::AdmissionConfig::default());
    }
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[256])
        .expect("preload");
    client.send_get(&[b"key-a"]);
    server.poll();
    let client_tap = client.stack.nic().borrow().port().clone();
    let server_tap = server.stack.nic().borrow().port().clone();
    let frame = client_tap.recv().expect("reply frame on the wire");
    let bytes = frame.data.clone();
    server_tap.send(frame);
    let resp = client.recv_response().expect("reply decodes");
    (bytes, resp.vals)
}

/// The overload-control differential: a server with admission enabled but
/// never pressured (one request, ample backlog) must be byte-identical on
/// the wire to a server without any shed concept, for every serialization
/// system. Admission is a scheduling layer; an admitted request's reply
/// must not know it existed.
#[test]
fn admission_enabled_but_unpressured_is_wire_identical() {
    use cf_kv::server::SerKind;
    for kind in [
        SerKind::Cornflakes,
        SerKind::Protobuf,
        SerKind::FlatBuffers,
        SerKind::CapnProto,
    ] {
        let (plain_frame, plain_vals) = reply_with_admission(kind, false);
        let (adm_frame, adm_vals) = reply_with_admission(kind, true);
        assert_eq!(
            plain_frame, adm_frame,
            "{kind:?}: admission must be wire-invisible when unpressured"
        );
        assert_eq!(plain_vals, adm_vals, "{kind:?}: decoded values agree");
        assert_eq!(adm_vals.len(), 1, "{kind:?}: one value for one key");
    }
}

/// The cross-system differential: every system, fed the same canonical
/// message, must round-trip to the same decoded (id, keys, vals) triple.
/// Any single system drifting — encoder or decoder — breaks this here,
/// with the system and message shape named, rather than deep inside an
/// end-to-end benchmark.
#[test]
fn all_systems_agree_on_decoded_fields() {
    let sim = sim();
    for msg in canonical_messages() {
        let mut decoded: Vec<(&str, Option<u32>, Vec<Vec<u8>>, Vec<Vec<u8>>)> = Vec::new();

        let (_, cf_id, cf_keys, cf_vals) = cornflakes_roundtrip(&msg);
        decoded.push(("cornflakes", cf_id, cf_keys, cf_vals));

        let p = PGetM::decode(&sim, &protolite_encode(&sim, &msg)).expect("protolite");
        decoded.push(("protolite", p.id, p.keys, p.vals));

        let fbytes = flatlite_encode(&sim, &msg);
        let f = FlatGetMView::parse(&sim, &fbytes).expect("flatlite");
        decoded.push((
            "flatlite",
            f.id().unwrap(),
            (0..f.keys_len().unwrap())
                .map(|i| f.key(i).unwrap().to_vec())
                .collect(),
            (0..f.vals_len().unwrap())
                .map(|i| f.val(i).unwrap().to_vec())
                .collect(),
        ));

        let cbytes = capnlite_encode(&sim, &msg);
        let c = CapnReader::parse(&sim, &cbytes).expect("capnlite");
        decoded.push((
            "capnlite",
            c.id().unwrap(),
            c.keys(&sim).unwrap().iter().map(|k| k.to_vec()).collect(),
            c.vals(&sim).unwrap().iter().map(|v| v.to_vec()).collect(),
        ));

        let rbytes = resp_encode(&sim, &msg);
        let (rv, _) = resp::decode(&sim, &rbytes).expect("resp");
        let resp::RespValue::Array(items) = rv else {
            panic!("resp array");
        };
        let rid = match &items[0] {
            resp::RespValue::Nil => None,
            other => Some(u32::from_le_bytes(
                other.as_bulk().unwrap().try_into().unwrap(),
            )),
        };
        decoded.push((
            "resp",
            rid,
            items[1..1 + msg.keys.len()]
                .iter()
                .map(|i| i.as_bulk().unwrap().to_vec())
                .collect(),
            items[1 + msg.keys.len()..]
                .iter()
                .map(|i| i.as_bulk().unwrap().to_vec())
                .collect(),
        ));

        for (system, id, keys, vals) in &decoded {
            assert_eq!(*id, msg.id, "{}: {} id drifted", msg.name, system);
            assert_eq!(*keys, msg.keys, "{}: {} keys drifted", msg.name, system);
            assert_eq!(*vals, msg.vals, "{}: {} vals drifted", msg.name, system);
        }
    }
}
