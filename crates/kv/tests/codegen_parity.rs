//! Parity between schema-generated messages and the hand-written reference
//! messages in `cornflakes_core::msgs`.
//!
//! `GetMsg` (generated from `schema/kv.proto`) and `cornflakes_core::msgs::
//! GetM` share the same schema, so their wire encodings must be
//! byte-identical and cross-deserializable. This is the compiler's
//! correctness proof: the emitter and the hand-written reference implement
//! the same format.

use cf_sim::{MachineProfile, Sim};
use cornflakes_core::msgs::GetM;
use cornflakes_core::obj::serialize_to_vec;
use cornflakes_core::{CFBytes, CornflakesObj, SerCtx, SerializationConfig};

use cf_kv::msgs::{BatchMsg, GetMsg, PairMsg};

fn ctx() -> SerCtx {
    SerCtx::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        SerializationConfig::hybrid(),
    )
}

#[test]
fn generated_and_handwritten_encodings_match() {
    let c = ctx();
    let pinned = c.pool.alloc(2048).unwrap();

    let mut generated = GetMsg::new();
    generated.id = Some(42);
    generated.add_keys(&c, b"key-one");
    generated.add_keys(&c, b"key-two");
    generated.add_vals(&c, pinned.as_slice());

    let mut handwritten = GetM::new();
    handwritten.id = Some(42);
    handwritten.keys.append(CFBytes::new(&c, b"key-one"));
    handwritten.keys.append(CFBytes::new(&c, b"key-two"));
    handwritten.vals.append(CFBytes::new(&c, pinned.as_slice()));

    assert_eq!(generated.object_len(), handwritten.object_len());
    assert_eq!(generated.header_bytes(), handwritten.header_bytes());
    assert_eq!(
        generated.zero_copy_entries(),
        handwritten.zero_copy_entries()
    );
    assert_eq!(
        serialize_to_vec(&generated),
        serialize_to_vec(&handwritten),
        "wire encodings must be byte-identical"
    );
}

#[test]
fn cross_deserialization() {
    let c = ctx();
    let rx = ctx();
    let mut generated = GetMsg::new();
    generated.id = Some(7);
    generated.add_vals(&c, &[0xAB; 600]);
    let wire = serialize_to_vec(&generated);
    let pkt = rx.pool.alloc_from(&wire).unwrap();

    // Hand-written type decodes the generated encoding...
    let hw = GetM::deserialize(&rx, &pkt).unwrap();
    assert_eq!(hw.id, Some(7));
    assert_eq!(hw.vals.get(0).unwrap().as_slice(), &[0xAB; 600][..]);

    // ...and the generated type decodes its own encoding.
    let gen = GetMsg::deserialize(&rx, &pkt).unwrap();
    assert_eq!(gen.id, Some(7));
    assert_eq!(gen.vals.get(0).unwrap().as_slice(), &[0xAB; 600][..]);
}

#[test]
fn generated_nested_messages_roundtrip() {
    let c = ctx();
    let rx = ctx();
    let pinned = c.pool.alloc(1024).unwrap();
    let mut batch = BatchMsg::new();
    batch.set_id(99);
    for i in 0..3u64 {
        let mut pair = PairMsg::new();
        pair.set_key(&c, format!("k{i}").as_bytes());
        pair.set_val(&c, if i == 1 { pinned.as_slice() } else { b"small" });
        batch.add_pairs(pair);
        batch.add_versions(i * 10);
    }
    assert_eq!(batch.zero_copy_entries(), 1);

    let wire = serialize_to_vec(&batch);
    let pkt = rx.pool.alloc_from(&wire).unwrap();
    let d = BatchMsg::deserialize(&rx, &pkt).unwrap();
    assert_eq!(d.get_id(), Some(99));
    assert_eq!(d.get_pairs().len(), 3);
    assert_eq!(d.get_pairs().get(1).unwrap().get_val().unwrap().len(), 1024);
    assert_eq!(
        d.get_pairs().get(2).unwrap().get_key().unwrap().as_slice(),
        b"k2"
    );
    let versions: Vec<u64> = d.get_versions().iter().collect();
    assert_eq!(versions, vec![0, 10, 20]);
}

#[test]
fn generated_accessors_match_listing_1() {
    // The paper's Listing 1 API surface: new / init_vals / get_mut_vals /
    // get_keys / deserialize.
    let c = ctx();
    let mut m = GetMsg::new();
    m.init_vals(4);
    m.get_mut_vals().append(CFBytes::new(&c, b"v"));
    assert_eq!(m.get_vals().len(), 1);
    assert_eq!(m.get_keys().len(), 0);
}
