//! End-to-end tests for mini-Redis and the echo-server variants.

use cf_net::{FrameMeta, UdpStack, HEADER_BYTES};
use cf_nic::link;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::obj::serialize_to_vec;
use cornflakes_core::{CFBytes, CornflakesObj, SerializationConfig};

use cf_kv::echo::{EchoKind, EchoServer};
use cf_kv::msg_type;
use cf_kv::msgs::GetMsg;
use cf_kv::redis::{client as redis_client, RedisBackend, RedisServer};

use cf_baselines::capnlite::CapnGetM;
use cf_baselines::flatlite::FlatGetM;
use cf_baselines::protolite::PGetM;

const CLIENT_PORT: u16 = 700;
const SERVER_PORT: u16 = 6379;

fn stacks() -> (UdpStack, UdpStack) {
    let (cp, sp) = link();
    let client = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        cp,
        CLIENT_PORT,
        SerializationConfig::hybrid(),
    );
    let server = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        sp,
        SERVER_PORT,
        SerializationConfig::hybrid(),
    );
    (client, server)
}

fn meta(req_id: u32) -> FrameMeta {
    FrameMeta {
        msg_type: msg_type::ECHO,
        flags: 0,
        req_id,
    }
}

fn send_command(client: &mut UdpStack, parts: &[&[u8]], req_id: u32) {
    let sim = client.sim().clone();
    let payload = redis_client::encode_command(&sim, parts);
    let mut tx = client.alloc_tx(payload.len()).unwrap();
    tx.write_at(HEADER_BYTES, &payload);
    let hdr = client.header_to(SERVER_PORT, meta(req_id));
    client.send_built(hdr, tx, payload.len()).unwrap();
}

fn redis_roundtrip(backend: RedisBackend) {
    let (mut client, server_stack) = stacks();
    let mut server = RedisServer::new(server_stack, backend);
    let value = vec![0x42u8; 3000];

    // SET key value.
    send_command(&mut client, &[b"SET", b"mykey", &value], 1);
    server.poll();
    let ok = client.recv_packet().expect("ack");
    // Acks are always RESP (+OK), under both backends.
    assert_eq!(&ok.payload[..1], b"+");

    // GET key.
    send_command(&mut client, &[b"GET", b"mykey"], 2);
    server.poll();
    let pkt = client.recv_packet().expect("reply");
    let sim = client.sim().clone();
    let vals = redis_client::decode_response(&sim, client.ctx(), backend, &pkt.payload).unwrap();
    assert_eq!(vals.len(), 1, "{backend:?}");
    assert_eq!(vals[0], value, "{backend:?}");
}

#[test]
fn redis_set_get_both_backends() {
    redis_roundtrip(RedisBackend::Resp);
    redis_roundtrip(RedisBackend::Cornflakes);
}

#[test]
fn redis_mget_and_lrange() {
    for backend in [RedisBackend::Resp, RedisBackend::Cornflakes] {
        let (mut client, server_stack) = stacks();
        let mut server = RedisServer::new(server_stack, backend);
        // Two keys of 2048 bytes each (the paper's mget-2 shape).
        server
            .store
            .preload(server.stack.ctx(), b"k1", &[2048])
            .unwrap();
        server
            .store
            .preload(server.stack.ctx(), b"k2", &[2048])
            .unwrap();
        // A list value of 2 buffers (the lrange-2 shape).
        server
            .store
            .preload(server.stack.ctx(), b"mylist", &[2048, 2048])
            .unwrap();

        send_command(&mut client, &[b"MGET", b"k1", b"k2"], 1);
        server.poll();
        let pkt = client.recv_packet().unwrap();
        let sim = client.sim().clone();
        let vals =
            redis_client::decode_response(&sim, client.ctx(), backend, &pkt.payload).unwrap();
        assert_eq!(vals.len(), 2, "{backend:?} mget");
        assert!(vals.iter().all(|v| v.len() == 2048));

        send_command(&mut client, &[b"LRANGE", b"mylist", b"0", b"-1"], 2);
        server.poll();
        let pkt = client.recv_packet().unwrap();
        let vals =
            redis_client::decode_response(&sim, client.ctx(), backend, &pkt.payload).unwrap();
        assert_eq!(vals.len(), 2, "{backend:?} lrange");
    }
}

#[test]
fn redis_get_missing_is_nil() {
    let (mut client, server_stack) = stacks();
    let mut server = RedisServer::new(server_stack, RedisBackend::Resp);
    send_command(&mut client, &[b"GET", b"absent"], 1);
    server.poll();
    let pkt = client.recv_packet().unwrap();
    assert_eq!(&*pkt.payload, b"$-1\r\n");
}

#[test]
fn redis_cornflakes_zero_copies_responses() {
    let (mut client, server_stack) = stacks();
    let mut server = RedisServer::new(server_stack, RedisBackend::Cornflakes);
    server
        .store
        .preload(server.stack.ctx(), b"k", &[4096])
        .unwrap();
    send_command(&mut client, &[b"GET", b"k"], 1);
    server.poll();
    assert_eq!(
        server.stack.nic_stats().tx_sg_entries,
        2,
        "4 KiB value should ride a zero-copy entry"
    );
    client.recv_packet().unwrap();
}

// ---- echo variants -------------------------------------------------------

/// Builds the echo request payload for a variant and returns (payload,
/// expected echoed fields).
fn echo_payload(kind: EchoKind, stack: &UdpStack, fields: &[Vec<u8>]) -> Vec<u8> {
    let sim = stack.sim().clone();
    match kind {
        EchoKind::Protobuf => {
            let mut m = PGetM::new();
            for f in fields {
                m.add_val(&sim, f);
            }
            m.encode(&sim, 0x10_0000)
        }
        EchoKind::FlatBuffers => {
            let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
            FlatGetM::encode(&sim, None, &[], &refs)
        }
        EchoKind::CapnProto => {
            let mut m = CapnGetM::new();
            for f in fields {
                m.add_val(&sim, f);
            }
            CapnGetM::frame(&m.finish(&sim))
        }
        // Manual variants and Cornflakes exchange the Cornflakes format.
        _ => {
            let mut m = GetMsg::new();
            {
                let ctx = stack.ctx();
                for f in fields {
                    m.get_mut_vals().append(CFBytes::new(ctx, f));
                }
            }
            serialize_to_vec(&m)
        }
    }
}

/// Decodes an echoed response's fields for comparison.
fn decode_echo(kind: EchoKind, stack: &UdpStack, payload: &cf_mem::RcBuf) -> Vec<Vec<u8>> {
    let sim = stack.sim().clone();
    match kind {
        EchoKind::Protobuf => PGetM::decode(&sim, payload).unwrap().vals,
        EchoKind::FlatBuffers => {
            let v = cf_baselines::flatlite::FlatGetMView::parse(&sim, payload).unwrap();
            (0..v.vals_len().unwrap())
                .map(|i| v.val(i).unwrap().to_vec())
                .collect()
        }
        EchoKind::CapnProto => {
            let r = cf_baselines::capnlite::CapnReader::parse(&sim, payload).unwrap();
            r.vals(&sim).unwrap().iter().map(|b| b.to_vec()).collect()
        }
        EchoKind::NoSerialization => {
            // Raw frame payload: the original Cornflakes-format message.
            let m = GetMsg::deserialize(stack.ctx(), payload).unwrap();
            m.vals.iter().map(|v| v.as_slice().to_vec()).collect()
        }
        _ => {
            let m = GetMsg::deserialize(stack.ctx(), payload).unwrap();
            m.vals.iter().map(|v| v.as_slice().to_vec()).collect()
        }
    }
}

#[test]
fn all_echo_variants_echo_correctly() {
    // The paper's echo message: a list with two 2048-byte elements.
    let fields = vec![vec![0x11u8; 2048], vec![0x22u8; 2048]];
    for kind in [
        EchoKind::NoSerialization,
        EchoKind::ZeroCopyRaw,
        EchoKind::OneCopy,
        EchoKind::TwoCopy,
        EchoKind::Cornflakes,
        EchoKind::Protobuf,
        EchoKind::FlatBuffers,
        EchoKind::CapnProto,
    ] {
        let (mut client, server_stack) = stacks();
        let mut server = EchoServer::new(server_stack, kind);
        let payload = echo_payload(kind, &client, &fields);
        let mut tx = client.alloc_tx(payload.len()).unwrap();
        tx.write_at(HEADER_BYTES, &payload);
        let hdr = client.header_to(SERVER_PORT, meta(9));
        client.send_built(hdr, tx, payload.len()).unwrap();

        assert_eq!(server.poll(), 1, "{kind:?}");
        let pkt = client.recv_packet().expect("echo reply");
        let echoed = decode_echo(kind, &client, &pkt.payload);
        assert_eq!(echoed.len(), 2, "{kind:?}");
        assert_eq!(echoed[0], fields[0], "{kind:?}");
        assert_eq!(echoed[1], fields[1], "{kind:?}");
    }
}

#[test]
fn echo_variant_cost_ordering_matches_figure_2() {
    // Per-request virtual cost must order: no-ser < raw zero-copy <
    // one-copy < two-copy < libraries.
    let fields = vec![vec![0x11u8; 2048], vec![0x22u8; 2048]];
    let mut costs = std::collections::HashMap::new();
    for kind in EchoKind::figure2() {
        let (mut client, server_stack) = stacks();
        let server_sim = server_stack.sim().clone();
        let mut server = EchoServer::new(server_stack, kind);
        // Warm up one request, then measure ten.
        for _ in 0..3 {
            let payload = echo_payload(kind, &client, &fields);
            let mut tx = client.alloc_tx(payload.len()).unwrap();
            tx.write_at(HEADER_BYTES, &payload);
            let hdr = client.header_to(SERVER_PORT, meta(1));
            client.send_built(hdr, tx, payload.len()).unwrap();
            server.poll();
            client.recv_packet().unwrap();
        }
        let t0 = server_sim.now();
        let rounds = 10;
        for _ in 0..rounds {
            let payload = echo_payload(kind, &client, &fields);
            let mut tx = client.alloc_tx(payload.len()).unwrap();
            tx.write_at(HEADER_BYTES, &payload);
            let hdr = client.header_to(SERVER_PORT, meta(1));
            client.send_built(hdr, tx, payload.len()).unwrap();
            server.poll();
            client.recv_packet().unwrap();
        }
        costs.insert(kind, (server_sim.now() - t0) / rounds);
    }
    let order = [
        EchoKind::NoSerialization,
        EchoKind::ZeroCopyRaw,
        EchoKind::OneCopy,
        EchoKind::TwoCopy,
    ];
    for w in order.windows(2) {
        assert!(
            costs[&w[0]] < costs[&w[1]],
            "{:?} ({}) should be cheaper than {:?} ({})",
            w[0],
            costs[&w[0]],
            w[1],
            costs[&w[1]]
        );
    }
    for lib in [
        EchoKind::Protobuf,
        EchoKind::FlatBuffers,
        EchoKind::CapnProto,
    ] {
        assert!(
            costs[&lib] > costs[&EchoKind::TwoCopy],
            "{lib:?} ({}) should cost more than two-copy ({})",
            costs[&lib],
            costs[&EchoKind::TwoCopy]
        );
    }
}
