//! KV-over-TCP end-to-end: a [`TcpKvServer`] on a flow-table listener
//! serving [`TcpKvClient`]s through the hub — puts, multi-gets with
//! zero-copy value segments, degraded puts under store pressure, and
//! interleaved clients on one listener.

use cf_kv::tcp_server::{TcpKvClient, TcpKvServer};
use cf_kv::{flags, msg_type};
use cf_net::{FlowConfig, TcpListener, TcpStack};
use cf_nic::PortHub;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

const SERVER_PORT: u16 = 9000;

fn rig() -> (TcpKvServer, PortHub, Sim) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (server_wire, trunk) = cf_nic::link();
    let hub = PortHub::new(trunk);
    let listener = TcpListener::new(
        sim.clone(),
        server_wire,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        FlowConfig::default(),
    );
    (TcpKvServer::new(listener), hub, sim)
}

fn connect(server: &mut TcpKvServer, hub: &mut PortHub, sim: &Sim, port: u16) -> TcpKvClient {
    let stack = TcpStack::new(
        sim.clone(),
        hub.attach(port),
        port,
        SerializationConfig::hybrid(),
    );
    let mut client = TcpKvClient::new(stack);
    client.connect(SERVER_PORT).unwrap();
    hub.pump();
    server.poll().unwrap();
    hub.pump();
    client.poll().unwrap();
    hub.pump();
    server.poll().unwrap();
    assert!(client.is_established());
    client
}

/// One settle round: client frames reach the server, the server serves,
/// and replies reach the client.
fn settle(server: &mut TcpKvServer, hub: &mut PortHub, client: &mut TcpKvClient) {
    hub.pump();
    server.poll().unwrap();
    hub.pump();
    client.poll().unwrap();
    hub.pump();
    server.poll().unwrap(); // client ACKs release server tx records
}

#[test]
fn put_then_get_roundtrip() {
    let (mut server, mut hub, sim) = rig();
    let mut client = connect(&mut server, &mut hub, &sim, 4000);

    let put_id = client.put(b"greeting", b"hello, tcp kv").unwrap();
    settle(&mut server, &mut hub, &mut client);
    let ack = client.recv_reply().unwrap().expect("put acked");
    assert_eq!(ack.msg_type, msg_type::PUT | msg_type::RESPONSE);
    assert_eq!(ack.req_id, put_id);
    assert_eq!(ack.flags, 0);
    assert!(ack.vals.is_empty());

    let get_id = client.get(&[b"greeting"]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let got = client.recv_reply().unwrap().expect("get served");
    assert_eq!(got.msg_type, msg_type::GET | msg_type::RESPONSE);
    assert_eq!(got.req_id, get_id);
    assert_eq!(got.vals, vec![b"hello, tcp kv".to_vec()]);
}

#[test]
fn multi_get_returns_every_requested_value() {
    let (mut server, mut hub, sim) = rig();
    let mut client = connect(&mut server, &mut hub, &sim, 4000);

    for (k, v) in [(b"alpha", b"AAAAA"), (b"bravo", b"BBBBB")] {
        client.put(k, v).unwrap();
        settle(&mut server, &mut hub, &mut client);
        assert_eq!(client.recv_reply().unwrap().expect("put acked").flags, 0);
    }

    client.get(&[b"alpha", b"bravo"]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let got = client.recv_reply().unwrap().expect("multi-get served");
    assert_eq!(got.vals, vec![b"AAAAA".to_vec(), b"BBBBB".to_vec()]);
}

#[test]
fn get_of_missing_key_returns_empty_vals() {
    let (mut server, mut hub, sim) = rig();
    let mut client = connect(&mut server, &mut hub, &sim, 4000);
    client.get(&[b"nonexistent"]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let got = client.recv_reply().unwrap().expect("reply arrives");
    assert_eq!(got.msg_type, msg_type::GET | msg_type::RESPONSE);
    assert!(got.vals.is_empty());
}

#[test]
fn large_segmented_value_survives_the_stream() {
    let (mut server, mut hub, sim) = rig();
    let mut client = connect(&mut server, &mut hub, &sim, 4000);

    // Larger than the put segment size, so the store splits it and the
    // get reply gathers multiple zero-copy segments into the stream.
    // (Kept under the 9000-byte jumbo MTU minus framing: the client
    // stages the whole request contiguously in one frame.)
    let big: Vec<u8> = (0..8_500u32).map(|i| (i % 251) as u8).collect();
    client.put(b"big", &big).unwrap();
    settle(&mut server, &mut hub, &mut client);
    assert_eq!(client.recv_reply().unwrap().expect("put acked").flags, 0);

    client.get(&[b"big"]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let got = client.recv_reply().unwrap().expect("get served");
    let joined: Vec<u8> = got.vals.concat();
    assert_eq!(joined, big, "segments reassemble to the original value");
    assert!(got.vals.len() > 1, "value came back in multiple segments");
}

#[test]
fn interleaved_clients_get_their_own_replies() {
    let (mut server, mut hub, sim) = rig();
    let mut c1 = connect(&mut server, &mut hub, &sim, 4000);
    let mut c2 = connect(&mut server, &mut hub, &sim, 4001);

    c1.put(b"owner", b"client one").unwrap();
    c2.put(b"owner2", b"client two").unwrap();
    hub.pump();
    server.poll().unwrap();
    hub.pump();
    c1.poll().unwrap();
    c2.poll().unwrap();
    hub.pump();
    server.poll().unwrap();
    assert_eq!(c1.recv_reply().unwrap().expect("c1 ack").flags, 0);
    assert_eq!(c2.recv_reply().unwrap().expect("c2 ack").flags, 0);

    c1.get(&[b"owner2"]).unwrap();
    c2.get(&[b"owner"]).unwrap();
    hub.pump();
    server.poll().unwrap();
    hub.pump();
    c1.poll().unwrap();
    c2.poll().unwrap();
    let r1 = c1.recv_reply().unwrap().expect("c1 get");
    let r2 = c2.recv_reply().unwrap().expect("c2 get");
    assert_eq!(r1.vals, vec![b"client two".to_vec()]);
    assert_eq!(r2.vals, vec![b"client one".to_vec()]);
}

#[test]
fn put_under_store_pressure_is_acked_degraded() {
    let (mut server, mut hub, sim) = rig();
    let mut client = connect(&mut server, &mut hub, &sim, 4000);

    // Exhaust only the size class the value's store segment needs. The
    // value is sized just under the 4 KiB class boundary so everything
    // else stays clear of the hogged class: the request frame and the
    // extracted message both exceed 4 KiB (8 KiB class), and the
    // header-only degraded ack uses the 64 B class — only apply_put's
    // 4090-byte segment allocation fails.
    let mut hogs = Vec::new();
    while let Ok(b) = server.listener.ctx().pool.alloc(4096) {
        hogs.push(b);
    }

    client.put(b"key", &[0x55; 4090]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let ack = client
        .recv_reply()
        .unwrap()
        .expect("degraded ack, not a hang");
    assert_eq!(ack.msg_type, msg_type::PUT | msg_type::RESPONSE);
    assert_eq!(ack.flags & flags::DEGRADED, flags::DEGRADED);

    drop(hogs);
    client.put(b"key", b"now it fits").unwrap();
    settle(&mut server, &mut hub, &mut client);
    assert_eq!(client.recv_reply().unwrap().expect("clean ack").flags, 0);

    client.get(&[b"key"]).unwrap();
    settle(&mut server, &mut hub, &mut client);
    let got = client.recv_reply().unwrap().expect("get served");
    assert_eq!(got.vals, vec![b"now it fits".to_vec()]);
}
