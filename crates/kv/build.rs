//! Generates Cornflakes serialization code for the KV message schema.

fn main() {
    let out = std::path::Path::new(&std::env::var("OUT_DIR").expect("OUT_DIR set by cargo"))
        .join("kv_gen.rs");
    cf_codegen::generate_to_file("schema/kv.proto", &out).expect("schema compiles");
}
