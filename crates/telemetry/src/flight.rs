//! Request-scoped flight recorder: a fixed-capacity ring of typed
//! lifecycle events, correlated by the existing KV request id.
//!
//! Aggregate counters answer "how many requests were shed?"; the flight
//! recorder answers "what happened to *this* request?". Every layer of the
//! datapath — client retry logic, UDP/TCP stacks, per-queue NIC, backlog
//! admission, shard dispatch, the serializer — records a [`FlightEvent`]
//! stamped with its *own* machine's virtual clock, keyed by the request id
//! that is already on the wire. Nothing is added to the wire format: the
//! NIC reads the id straight out of the frame header, so golden fixtures
//! stay byte-exact whether or not a recorder is installed.
//!
//! The handle follows the same discipline as [`crate::Telemetry`]:
//!
//! - **Disabled** (the default): `record()` is a single `Option` branch —
//!   no allocation, no formatting, no clock read. The zero-alloc hot-path
//!   test (`tests/flight_zero_alloc.rs`) asserts this literally, with a
//!   counting global allocator.
//! - **Enabled**: events land in a ring buffer preallocated at
//!   construction. Recording is a copy into a fixed slot; when the ring is
//!   full the oldest record is overwritten (and counted in
//!   [`FlightRecorder::dropped`]). Still no allocation.
//!
//! Cloning a `FlightRecorder` clones the handle, not the ring: install the
//! same recorder on a client and a server and their events interleave into
//! one timeline. Extraction ([`drain`](FlightRecorder::drain),
//! [`events_for`](FlightRecorder::events_for)) allocates, but only on the
//! reporting path.

use std::cell::RefCell;
use std::rc::Rc;

use crate::json;

/// One typed lifecycle event. `Copy`, fixed-size, and allocation-free by
/// construction — variants carry only small scalars.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// Client transmitted the first attempt of a request.
    ClientSend,
    /// Client retransmitted after a timeout; `attempt` counts from 1,
    /// `backoff_ns` is the backoff that preceded this attempt.
    ClientRetry { attempt: u8, backoff_ns: u64 },
    /// Circuit breaker rejected the request without touching the wire.
    BreakerFastFail,
    /// Retry budget refused a retransmission; the request will time out.
    RetryBudgetExhausted,
    /// Client gave up on the request (retries exhausted or budget-denied).
    ClientTimeout,
    /// A response arrived for an id the client had already abandoned.
    StaleReply,
    /// Client received a `SHED` fast-reject from the server.
    ShedReply,
    /// Client received a response; `flags` are the reply's header flags.
    ClientRecv { flags: u8 },
    /// NIC accepted a frame for transmission on `queue`.
    NicTxEnqueue { queue: u8 },
    /// NIC steered a received frame into `queue`'s rx staging ring.
    NicRxEnqueue { queue: u8 },
    /// NIC dropped a received frame because `queue`'s staging ring was full.
    NicTailDrop { queue: u8 },
    /// Server admitted the request into the backlog (`backlog` = new depth).
    BacklogAdmit { backlog: u16 },
    /// CoDel shed the request after sitting `sojourn_ns` in the backlog.
    BacklogShed { sojourn_ns: u64 },
    /// A shard's service loop picked the request up for processing.
    ShardDispatch { shard: u8 },
    /// Serializer built the reply with `entries` scatter-gather entries.
    Serialize { entries: u8 },
    /// Scatter-gather reply fell back to the copy path (SG limit).
    CopyFallback,
    /// Dedup window suppressed a retried put (exactly-once replay).
    DedupHit,
    /// Server finished the request and posted the reply; `flags` as sent.
    Reply { flags: u8 },
    /// TCP stack sent a message (`req_id` is the message's start seq).
    TcpMsgSend { bytes: u32 },
    /// TCP stack delivered a reassembled message to the application.
    TcpMsgDeliver { bytes: u32 },
    /// Flow-table listener completed a handshake; `flows` is the table's
    /// occupancy after the accept. Keyed by the flow's remote port.
    TcpAccept { flows: u16 },
    /// Listener answered a SYN with an RST because the flow slab or SYN
    /// backlog was full. Keyed by the rejected remote port.
    TcpSynReject,
    /// A flow slot was returned to the slab; `reason` is a
    /// `FLOW_CLOSE_*` constant (FIN, peer RST, idle reap, local close).
    TcpFlowClose { reason: u8 },
    /// Coordinator forwarded a client put to backup replica `node`.
    ReplicaPut { node: u8 },
    /// Coordinator received backup `node`'s replication acknowledgement.
    ReplicaAck { node: u8 },
    /// Cluster client re-routed the request to replica `node` after its
    /// current route stopped answering.
    Failover { node: u8 },
    /// A rejoined replica received this put via catch-up log replay from
    /// `node`.
    CatchupReplay { node: u8 },
}

impl FlightEvent {
    /// Stable short label, used by the JSON export and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FlightEvent::ClientSend => "client_send",
            FlightEvent::ClientRetry { .. } => "client_retry",
            FlightEvent::BreakerFastFail => "breaker_fast_fail",
            FlightEvent::RetryBudgetExhausted => "retry_budget_exhausted",
            FlightEvent::ClientTimeout => "client_timeout",
            FlightEvent::StaleReply => "stale_reply",
            FlightEvent::ShedReply => "shed_reply",
            FlightEvent::ClientRecv { .. } => "client_recv",
            FlightEvent::NicTxEnqueue { .. } => "nic_tx_enqueue",
            FlightEvent::NicRxEnqueue { .. } => "nic_rx_enqueue",
            FlightEvent::NicTailDrop { .. } => "nic_tail_drop",
            FlightEvent::BacklogAdmit { .. } => "backlog_admit",
            FlightEvent::BacklogShed { .. } => "backlog_shed",
            FlightEvent::ShardDispatch { .. } => "shard_dispatch",
            FlightEvent::Serialize { .. } => "serialize",
            FlightEvent::CopyFallback => "copy_fallback",
            FlightEvent::DedupHit => "dedup_hit",
            FlightEvent::Reply { .. } => "reply",
            FlightEvent::TcpMsgSend { .. } => "tcp_msg_send",
            FlightEvent::TcpMsgDeliver { .. } => "tcp_msg_deliver",
            FlightEvent::TcpAccept { .. } => "tcp_accept",
            FlightEvent::TcpSynReject => "tcp_syn_reject",
            FlightEvent::TcpFlowClose { .. } => "tcp_flow_close",
            FlightEvent::ReplicaPut { .. } => "replica_put",
            FlightEvent::ReplicaAck { .. } => "replica_ack",
            FlightEvent::Failover { .. } => "failover",
            FlightEvent::CatchupReplay { .. } => "catchup_replay",
        }
    }

    /// The event's scalar detail (queue, shard, sojourn…), if it has one,
    /// as a `(key, value)` pair for exports.
    pub fn detail(&self) -> Option<(&'static str, u64)> {
        match *self {
            FlightEvent::ClientRetry { attempt, .. } => Some(("attempt", u64::from(attempt))),
            FlightEvent::ClientRecv { flags } | FlightEvent::Reply { flags } => {
                Some(("flags", u64::from(flags)))
            }
            FlightEvent::NicTxEnqueue { queue }
            | FlightEvent::NicRxEnqueue { queue }
            | FlightEvent::NicTailDrop { queue } => Some(("queue", u64::from(queue))),
            FlightEvent::BacklogAdmit { backlog } => Some(("backlog", u64::from(backlog))),
            FlightEvent::BacklogShed { sojourn_ns } => Some(("sojourn_ns", sojourn_ns)),
            FlightEvent::ShardDispatch { shard } => Some(("shard", u64::from(shard))),
            FlightEvent::Serialize { entries } => Some(("entries", u64::from(entries))),
            FlightEvent::TcpMsgSend { bytes } | FlightEvent::TcpMsgDeliver { bytes } => {
                Some(("bytes", u64::from(bytes)))
            }
            FlightEvent::TcpAccept { flows } => Some(("flows", u64::from(flows))),
            FlightEvent::TcpFlowClose { reason } => Some(("reason", u64::from(reason))),
            FlightEvent::ReplicaPut { node }
            | FlightEvent::ReplicaAck { node }
            | FlightEvent::Failover { node }
            | FlightEvent::CatchupReplay { node } => Some(("node", u64::from(node))),
            _ => None,
        }
    }
}

/// One recorded event: which request, when (virtual ns on the recording
/// machine's clock), and what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Correlation id — the KV request id already carried in the wire
    /// header (TCP events use the message's start sequence number).
    pub req_id: u32,
    /// Virtual-time stamp from the clock of the machine that recorded it.
    pub ts_ns: u64,
    /// What happened.
    pub event: FlightEvent,
}

struct Ring {
    records: Vec<FlightRecord>,
    capacity: usize,
    head: usize, // index of the oldest record when full
    len: usize,
    recorded: u64,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            records: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, rec: FlightRecord) {
        self.recorded += 1;
        if self.len < self.capacity {
            self.records.push(rec);
            self.len += 1;
        } else {
            // Overwrite the oldest slot; no allocation past warm-up.
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records in chronological (insertion) order.
    fn chronological(&self) -> impl Iterator<Item = &FlightRecord> {
        let (tail, head) = self.records.split_at(self.head.min(self.records.len()));
        head.iter().chain(tail.iter())
    }

    fn clear(&mut self) {
        self.records.clear();
        self.head = 0;
        self.len = 0;
    }
}

/// Cheaply clonable handle to a shared flight-recorder ring.
///
/// `FlightRecorder::default()` is disabled; see the module docs for the
/// enabled/disabled contract.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Rc<RefCell<Ring>>>,
}

impl FlightRecorder {
    /// A disabled recorder: every `record` is one branch and nothing else.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// An enabled recorder with room for `capacity` records (≥ 1). The
    /// ring is preallocated here; recording never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Rc::new(RefCell::new(Ring::new(capacity.max(1))))),
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. The hot-path entry point: a no-op branch when
    /// disabled, a fixed-slot copy when enabled.
    #[inline]
    pub fn record(&self, req_id: u32, ts_ns: u64, event: FlightEvent) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(FlightRecord {
                req_id,
                ts_ns,
                event,
            });
        }
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().len)
    }

    /// True when no records are held (or the recorder is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().capacity)
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().recorded)
    }

    /// Events lost to ring overwrite since creation (or last `drain`).
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// Removes and returns all held records in chronological order.
    /// Harnesses call this once per time slice to keep the ring from
    /// overwriting; allocation happens here, on the reporting path.
    pub fn drain(&self) -> Vec<FlightRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut ring = inner.borrow_mut();
                let out: Vec<FlightRecord> = ring.chronological().copied().collect();
                ring.clear();
                out
            }
        }
    }

    /// All currently held records for `req_id`, in chronological order.
    pub fn events_for(&self, req_id: u32) -> Vec<FlightRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .borrow()
                .chronological()
                .filter(|r| r.req_id == req_id)
                .copied()
                .collect(),
        }
    }

    /// All currently held records, oldest first, without clearing.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.borrow().chronological().copied().collect(),
        }
    }

    /// Drops all held records (capacity and drop counters are kept).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().clear();
        }
    }

    /// Renders one request's timeline as a JSON array of event objects
    /// (`{"ts_ns": …, "event": "…", "detail_key": detail_value}`).
    pub fn timeline_json(&self, req_id: u32) -> String {
        let mut out = String::from("[");
        for (i, rec) in self.events_for(req_id).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"ts_ns\": {}, \"event\": \"{}\"",
                rec.ts_ns,
                json::escape(rec.event.label())
            ));
            if let Some((k, v)) = rec.event.detail() {
                out.push_str(&format!(", \"{}\": {v}", json::escape(k)));
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        fr.record(1, 10, FlightEvent::ClientSend);
        assert!(!fr.is_enabled());
        assert!(fr.is_empty());
        assert_eq!(fr.capacity(), 0);
        assert_eq!(fr.recorded(), 0);
        assert!(fr.drain().is_empty());
        assert!(fr.events_for(1).is_empty());
        assert_eq!(fr.timeline_json(1), "[]");
    }

    #[test]
    fn records_and_correlates_by_request_id() {
        let fr = FlightRecorder::with_capacity(16);
        fr.record(7, 100, FlightEvent::ClientSend);
        fr.record(8, 110, FlightEvent::ClientSend);
        fr.record(7, 150, FlightEvent::BacklogAdmit { backlog: 3 });
        fr.record(7, 200, FlightEvent::Reply { flags: 0 });
        let seven = fr.events_for(7);
        assert_eq!(seven.len(), 3);
        assert_eq!(seven[0].event, FlightEvent::ClientSend);
        assert_eq!(seven[1].event, FlightEvent::BacklogAdmit { backlog: 3 });
        assert_eq!(seven[2].ts_ns, 200);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.recorded(), 4);
    }

    #[test]
    fn shared_handle_interleaves_machines() {
        let server_side = FlightRecorder::with_capacity(8);
        let client_side = server_side.clone();
        client_side.record(1, 50, FlightEvent::ClientSend);
        server_side.record(1, 80, FlightEvent::ShardDispatch { shard: 2 });
        client_side.record(1, 120, FlightEvent::ClientRecv { flags: 0 });
        let tl = server_side.events_for(1);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[1].event, FlightEvent::ShardDispatch { shard: 2 });
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let fr = FlightRecorder::with_capacity(4);
        for i in 0..6u32 {
            fr.record(i, u64::from(i) * 10, FlightEvent::ClientSend);
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.recorded(), 6);
        let snap = fr.snapshot();
        let ids: Vec<u32> = snap.iter().map(|r| r.req_id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest two were overwritten");
        assert!(snap.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn drain_empties_and_preserves_order() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u32 {
            fr.record(i, u64::from(i), FlightEvent::ClientSend);
        }
        let drained = fr.drain();
        assert_eq!(drained.len(), 3);
        let ids: Vec<u32> = drained.iter().map(|r| r.req_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(fr.is_empty());
        // The ring is reusable after a drain.
        fr.record(9, 99, FlightEvent::DedupHit);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot()[0].req_id, 9);
    }

    #[test]
    fn timeline_json_is_valid_and_carries_details() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(3, 10, FlightEvent::ClientSend);
        fr.record(
            3,
            20,
            FlightEvent::ClientRetry {
                attempt: 1,
                backoff_ns: 500,
            },
        );
        fr.record(3, 30, FlightEvent::BacklogShed { sojourn_ns: 1234 });
        let tl = fr.timeline_json(3);
        json::validate(&tl).expect("timeline is valid JSON");
        assert!(tl.contains("\"event\": \"client_retry\""));
        assert!(tl.contains("\"attempt\": 1"));
        assert!(tl.contains("\"sojourn_ns\": 1234"));
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let events = [
            FlightEvent::ClientSend,
            FlightEvent::ClientRetry {
                attempt: 1,
                backoff_ns: 0,
            },
            FlightEvent::BreakerFastFail,
            FlightEvent::RetryBudgetExhausted,
            FlightEvent::ClientTimeout,
            FlightEvent::StaleReply,
            FlightEvent::ShedReply,
            FlightEvent::ClientRecv { flags: 0 },
            FlightEvent::NicTxEnqueue { queue: 0 },
            FlightEvent::NicRxEnqueue { queue: 0 },
            FlightEvent::NicTailDrop { queue: 0 },
            FlightEvent::BacklogAdmit { backlog: 0 },
            FlightEvent::BacklogShed { sojourn_ns: 0 },
            FlightEvent::ShardDispatch { shard: 0 },
            FlightEvent::Serialize { entries: 0 },
            FlightEvent::CopyFallback,
            FlightEvent::DedupHit,
            FlightEvent::Reply { flags: 0 },
            FlightEvent::TcpMsgSend { bytes: 0 },
            FlightEvent::TcpMsgDeliver { bytes: 0 },
            FlightEvent::TcpAccept { flows: 0 },
            FlightEvent::TcpSynReject,
            FlightEvent::TcpFlowClose { reason: 0 },
            FlightEvent::ReplicaPut { node: 0 },
            FlightEvent::ReplicaAck { node: 0 },
            FlightEvent::Failover { node: 0 },
            FlightEvent::CatchupReplay { node: 0 },
        ];
        let mut labels: Vec<&str> = events.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate event label");
    }
}
