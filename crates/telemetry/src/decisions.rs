//! Decision logging for the hybrid serializer.
//!
//! Every `CFBytes` construction makes the paper's central choice: copy the
//! field into the arena, or post it zero-copy (recover the pinned buffer via
//! `recover_ptr` and bump its refcount). This module records each decision —
//! field size, active threshold, outcome, and recover hit/miss — as running
//! aggregates plus a small ring of recent decisions for debugging.

use crate::json;

/// One hybrid-serializer decision (a single `CFBytes` construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldDecision {
    /// Field length in bytes.
    pub len: usize,
    /// Effective copy/zero-copy threshold at decision time.
    pub threshold: usize,
    /// Whether a `recover_ptr` lookup was attempted (len >= threshold).
    pub recover_attempted: bool,
    /// Whether the lookup found a registered pinned region.
    pub recover_hit: bool,
    /// Final choice: true = zero-copy reference, false = arena copy.
    pub zero_copy: bool,
}

/// Aggregated decision counters plus a ring of recent decisions.
#[derive(Debug)]
pub struct DecisionLog {
    /// Total decisions.
    pub total: u64,
    /// Fields posted zero-copy.
    pub zero_copy: u64,
    /// Fields copied into the arena.
    pub copied: u64,
    /// `recover_ptr` lookups attempted.
    pub recover_attempts: u64,
    /// `recover_ptr` lookups that found a registered region.
    pub recover_hits: u64,
    /// Bytes posted zero-copy.
    pub bytes_zero_copy: u64,
    /// Bytes copied.
    pub bytes_copied: u64,
    recent: Vec<FieldDecision>,
    capacity: usize,
    head: usize,
}

impl DecisionLog {
    /// Creates a log keeping the most recent `capacity` decisions.
    pub fn new(capacity: usize) -> Self {
        DecisionLog {
            total: 0,
            zero_copy: 0,
            copied: 0,
            recover_attempts: 0,
            recover_hits: 0,
            bytes_zero_copy: 0,
            bytes_copied: 0,
            recent: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
        }
    }

    /// Records one decision.
    pub fn record(&mut self, d: FieldDecision) {
        self.total += 1;
        if d.zero_copy {
            self.zero_copy += 1;
            self.bytes_zero_copy += d.len as u64;
        } else {
            self.copied += 1;
            self.bytes_copied += d.len as u64;
        }
        if d.recover_attempted {
            self.recover_attempts += 1;
        }
        if d.recover_hit {
            self.recover_hits += 1;
        }
        if self.recent.len() < self.capacity {
            self.recent.push(d);
        } else {
            self.recent[self.head] = d;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// `recover_ptr` misses (attempted but no registered region found).
    pub fn recover_misses(&self) -> u64 {
        self.recover_attempts - self.recover_hits
    }

    /// Most recent decisions, oldest first.
    pub fn recent(&self) -> Vec<FieldDecision> {
        if self.recent.len() < self.capacity {
            self.recent.clone()
        } else {
            let mut v = Vec::with_capacity(self.capacity);
            for i in 0..self.capacity {
                v.push(self.recent[(self.head + i) % self.capacity]);
            }
            v
        }
    }

    /// Clears aggregates and the recent ring.
    pub fn reset(&mut self) {
        *self = DecisionLog::new(self.capacity);
    }

    /// Renders the aggregates as one JSON object.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"total\": {}, \"zero_copy\": {}, \"copied\": {}, \"recover_attempts\": {}, \
             \"recover_hits\": {}, \"recover_misses\": {}, \"bytes_zero_copy\": {}, \
             \"bytes_copied\": {}, \"zero_copy_fraction\": {}}}",
            self.total,
            self.zero_copy,
            self.copied,
            self.recover_attempts,
            self.recover_hits,
            self.recover_misses(),
            self.bytes_zero_copy,
            self.bytes_copied,
            json::num(if self.total == 0 {
                0.0
            } else {
                self.zero_copy as f64 / self.total as f64
            }),
        )
    }
}

impl Default for DecisionLog {
    fn default() -> Self {
        DecisionLog::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zc(len: usize) -> FieldDecision {
        FieldDecision {
            len,
            threshold: 512,
            recover_attempted: true,
            recover_hit: true,
            zero_copy: true,
        }
    }

    fn copy(len: usize) -> FieldDecision {
        FieldDecision {
            len,
            threshold: 512,
            recover_attempted: false,
            recover_hit: false,
            zero_copy: false,
        }
    }

    #[test]
    fn aggregates() {
        let mut log = DecisionLog::new(8);
        log.record(zc(1024));
        log.record(zc(2048));
        log.record(copy(100));
        log.record(FieldDecision {
            len: 600,
            threshold: 512,
            recover_attempted: true,
            recover_hit: false,
            zero_copy: false,
        });
        assert_eq!(log.total, 4);
        assert_eq!(log.zero_copy, 2);
        assert_eq!(log.copied, 2);
        assert_eq!(log.recover_attempts, 3);
        assert_eq!(log.recover_hits, 2);
        assert_eq!(log.recover_misses(), 1);
        assert_eq!(log.bytes_zero_copy, 3072);
        assert_eq!(log.bytes_copied, 700);
    }

    #[test]
    fn recent_ring_keeps_newest() {
        let mut log = DecisionLog::new(2);
        log.record(copy(1));
        log.record(copy(2));
        log.record(copy(3));
        let lens: Vec<usize> = log.recent().iter().map(|d| d.len).collect();
        assert_eq!(lens, vec![2, 3]);
    }

    #[test]
    fn summary_is_valid_json() {
        let mut log = DecisionLog::default();
        log.record(zc(9000));
        crate::json::validate(&log.summary_json()).expect("valid JSON");
        assert!(log.summary_json().contains("\"zero_copy_fraction\": 1"));
    }

    #[test]
    fn reset_zeroes() {
        let mut log = DecisionLog::new(4);
        log.record(zc(10));
        log.reset();
        assert_eq!(log.total, 0);
        assert!(log.recent().is_empty());
    }
}
