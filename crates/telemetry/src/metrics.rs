//! Named counters, gauges, and virtual-time histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`VtHistogram`]) are cheap `Rc` clones
//! that call sites cache once and update without any registry lookup on the
//! hot path. The registry itself is only consulted when a metric is created
//! or a snapshot is taken.
//!
//! Thread-safe producers (cf-mem, which is `Send`/`Sync`) publish
//! `Arc<AtomicU64>` cells instead, registered here as *external* gauges and
//! read at snapshot time.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cf_sim::Histogram;

use crate::json;

/// Monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Instantaneous-value gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: f64) {
        self.0.set(self.0.get() + d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// One magnitude group per power of two of the recorded value: group 0
/// holds value 0, group k holds values in `[2^(k-1), 2^k)`. Fixed-size so
/// exemplar tracking never allocates on the record path.
const EXEMPLAR_GROUPS: usize = 65;

/// A concrete request id retained for the largest value seen in one
/// magnitude group — the link from a histogram bucket back to a recorded
/// flight-recorder trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The bucket-max value (e.g. worst latency in this magnitude group).
    pub value: u64,
    /// Request id that produced it.
    pub req_id: u64,
}

struct HistState {
    hist: Histogram,
    exemplars: [Option<Exemplar>; EXEMPLAR_GROUPS],
}

impl Default for HistState {
    fn default() -> Self {
        HistState {
            hist: Histogram::default(),
            exemplars: [None; EXEMPLAR_GROUPS],
        }
    }
}

impl std::fmt::Debug for HistState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistState")
            .field("count", &self.hist.count())
            .finish()
    }
}

#[inline]
fn exemplar_group(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Histogram handle recording virtual-time durations (or any `u64` values),
/// backed by [`cf_sim::Histogram`], with optional per-bucket exemplars.
#[derive(Clone, Debug, Default)]
pub struct VtHistogram(Rc<RefCell<HistState>>);

impl VtHistogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().hist.record(v);
    }

    /// Records one value and retains `req_id` as the exemplar for `v`'s
    /// magnitude group if `v` is the largest value that group has seen.
    /// A tail bucket thus always points at a concrete outlier request.
    /// No allocation: the exemplar table is a fixed array.
    #[inline]
    pub fn record_exemplar(&self, v: u64, req_id: u64) {
        let mut st = self.0.borrow_mut();
        st.hist.record(v);
        let g = exemplar_group(v);
        if st.exemplars[g].is_none_or(|e| v >= e.value) {
            st.exemplars[g] = Some(Exemplar { value: v, req_id });
        }
    }

    /// The exemplar whose value best represents values `>= v`: the first
    /// non-empty magnitude group at or above `v`'s, falling back to the
    /// largest exemplar below. Use with a quantile: `h.with(|h|
    /// h.quantile(0.999))` then `exemplar_for(q)` names a request actually
    /// living in that tail.
    pub fn exemplar_for(&self, v: u64) -> Option<Exemplar> {
        let st = self.0.borrow();
        let g = exemplar_group(v);
        if let Some(e) = st.exemplars[g..].iter().flatten().next() {
            return Some(*e);
        }
        st.exemplars[..g].iter().rev().flatten().next().copied()
    }

    /// All retained exemplars, ascending by value.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.0
            .borrow()
            .exemplars
            .iter()
            .flatten()
            .copied()
            .collect()
    }

    /// Runs `f` against the underlying histogram.
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self.0.borrow().hist)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, VtHistogram>,
    externals: BTreeMap<String, Arc<AtomicU64>>,
}

/// Registry of named metrics, snapshotable to JSON and Prometheus text.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RefCell<RegistryInner>,
}

impl MetricsRegistry {
    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Returns (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> VtHistogram {
        let mut inner = self.inner.borrow_mut();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = VtHistogram::default();
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Registers a thread-safe external cell (read with `Ordering::Relaxed`
    /// at snapshot time). Used by `cf-mem`, whose stats must stay `Sync`.
    pub fn register_external(&self, name: &str, cell: Arc<AtomicU64>) {
        self.inner
            .borrow_mut()
            .externals
            .insert(name.to_string(), cell);
    }

    /// All counter values plus externals, sorted by name (for assertions).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let inner = self.inner.borrow();
        inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .chain(
                inner
                    .externals
                    .iter()
                    .map(|(n, e)| (n.clone(), e.load(Ordering::Relaxed))),
            )
            .collect()
    }

    /// Renders the `"counters"`, `"gauges"`, and `"histograms"` members of a
    /// JSON snapshot object (no surrounding braces).
    pub(crate) fn snapshot_json_members(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        out.push_str("\"counters\": {");
        let mut first = true;
        for (name, c) in &inner.counters {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", json::escape(name), c.get()));
        }
        for (name, e) in &inner.externals {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                json::escape(name),
                e.load(Ordering::Relaxed)
            ));
        }
        out.push_str("},\n\"gauges\": {");
        first = true;
        for (name, g) in &inner.gauges {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                json::escape(name),
                json::num(g.get())
            ));
        }
        out.push_str("},\n\"histograms\": {");
        first = true;
        for (name, h) in &inner.histograms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            h.with(|h2| {
                out.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"exemplars\": [",
                    json::escape(name),
                    h2.count(),
                    h2.min(),
                    h2.max(),
                    json::num(h2.mean()),
                    h2.p50(),
                    h2.p99(),
                ));
            });
            for (i, e) in h.exemplars().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"value\": {}, \"req_id\": {}}}",
                    e.value, e.req_id
                ));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Renders the registry in Prometheus text exposition format.
    ///
    /// - Metric names are sanitized (`.` and `-` become `_`); counters get
    ///   the conventional `_total` suffix.
    /// - Every family carries `# HELP` (escaped: `\` and newline) and
    ///   `# TYPE` lines; label values are escaped (`\`, `"`, newline).
    /// - Families are emitted in stable sorted order by exposition name,
    ///   regardless of metric kind, so scrapes diff cleanly.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if out.starts_with(|c: char| c.is_ascii_digit()) {
                out.insert(0, '_');
            }
            out
        }
        fn escape_help(s: &str) -> String {
            s.replace('\\', "\\\\").replace('\n', "\\n")
        }
        fn escape_label(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let inner = self.inner.borrow();
        // (exposition family name, rendered block) — sorted before joining.
        let mut families: Vec<(String, String)> = Vec::new();
        for (name, c) in &inner.counters {
            let n = format!("{}_total", sanitize(name));
            let block = format!(
                "# HELP {n} counter `{}`\n# TYPE {n} counter\n{n} {}\n",
                escape_help(name),
                c.get()
            );
            families.push((n, block));
        }
        for (name, e) in &inner.externals {
            let n = sanitize(name);
            let block = format!(
                "# HELP {n} gauge `{}`\n# TYPE {n} gauge\n{n} {}\n",
                escape_help(name),
                e.load(Ordering::Relaxed)
            );
            families.push((n, block));
        }
        for (name, g) in &inner.gauges {
            let n = sanitize(name);
            let block = format!(
                "# HELP {n} gauge `{}`\n# TYPE {n} gauge\n{n} {}\n",
                escape_help(name),
                g.get()
            );
            families.push((n, block));
        }
        for (name, h) in &inner.histograms {
            let n = sanitize(name);
            let block = h.with(|h| {
                let mut b = format!(
                    "# HELP {n} summary `{}`\n# TYPE {n} summary\n",
                    escape_help(name)
                );
                for (q, v) in [(0.5, h.p50()), (0.99, h.p99())] {
                    b.push_str(&format!(
                        "{n}{{quantile=\"{}\"}} {v}\n",
                        escape_label(&q.to_string())
                    ));
                }
                b.push_str(&format!(
                    "{n}_sum {}\n",
                    json::num(h.mean() * h.count() as f64)
                ));
                b.push_str(&format!("{n}_count {}\n", h.count()));
                b
            });
            families.push((n, block));
        }
        families.sort(); // stable output order by exposition name
        let mut out = String::new();
        for (_, block) in families {
            out.push_str(&block);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let r = MetricsRegistry::default();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        let g = r.gauge("g");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(r.gauge("g").get(), 1.5);
        let h = r.histogram("h");
        h.record(10);
        h.record(20);
        assert_eq!(r.histogram("h").with(|h| h.count()), 2);
    }

    #[test]
    fn externals_appear_in_counter_values() {
        let r = MetricsRegistry::default();
        let cell = Arc::new(AtomicU64::new(0));
        r.register_external("mem.x", Arc::clone(&cell));
        cell.store(42, Ordering::Relaxed);
        let vals = r.counter_values();
        assert!(vals.contains(&("mem.x".to_string(), 42)));
    }

    #[test]
    fn snapshot_members_are_valid_json() {
        let r = MetricsRegistry::default();
        r.counter("c.one").add(7);
        r.gauge("g-two").set(0.25);
        r.histogram("h three").record(99);
        r.register_external("ext", Arc::new(AtomicU64::new(3)));
        let json_doc = format!("{{{}}}", r.snapshot_json_members());
        crate::json::validate(&json_doc).expect("valid snapshot JSON");
        assert!(json_doc.contains("\"c.one\": 7"));
        assert!(json_doc.contains("\"ext\": 3"));
    }

    #[test]
    fn prometheus_text_shape() {
        let r = MetricsRegistry::default();
        r.counter("nic.tx-frames").add(2);
        r.histogram("lat").record(5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE nic_tx_frames_total counter"));
        assert!(text.contains("# HELP nic_tx_frames_total"));
        assert!(text.contains("nic_tx_frames_total 2"));
        assert!(text.contains("lat{quantile=\"0.5\"}"));
        assert!(text.contains("lat_sum"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn prometheus_output_is_stable_sorted_and_escaped() {
        let r = MetricsRegistry::default();
        r.counter("zzz.last").inc();
        r.gauge("aaa.first").set(1.0);
        r.histogram("mmm.mid").record(3);
        r.register_external("bbb.ext", Arc::new(AtomicU64::new(9)));
        // A hostile name: sanitized for the sample, escaped in HELP.
        r.counter("weird\\name\nwith \"stuff\"").inc();
        let text = r.prometheus_text();
        // Families appear in sorted exposition-name order.
        let fams: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = fams.clone();
        sorted.sort_unstable();
        assert_eq!(fams, sorted, "families must be emitted sorted");
        // Deterministic: two renders are byte-identical.
        assert_eq!(text, r.prometheus_text());
        // HELP carries the raw name with backslash/newline escaped; no raw
        // newline from the name leaks into the exposition.
        assert!(text.contains("weird\\\\name\\nwith \"stuff\""));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "sample line must be `name value`: {line:?}"
            );
        }
    }

    /// Round-trip: parse the exposition text back into (name, value) samples
    /// and check every registry value survives the trip.
    #[test]
    fn prometheus_scrape_round_trips() {
        let r = MetricsRegistry::default();
        r.counter("kv.client.retries").add(17);
        r.counter("nic.q0.tx_frames").add(3);
        r.gauge("kv.shard0.backlog").set(4.0);
        r.register_external("mem.pool.allocs", Arc::new(AtomicU64::new(12)));
        let h = r.histogram("kv.client.e2e_latency_ns");
        for v in [100, 200, 300, 400] {
            h.record(v);
        }
        let text = r.prometheus_text();
        let mut samples: BTreeMap<String, f64> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            samples.insert(name_part.to_string(), value.parse().expect("numeric"));
        }
        assert_eq!(samples["kv_client_retries_total"], 17.0);
        assert_eq!(samples["nic_q0_tx_frames_total"], 3.0);
        assert_eq!(samples["kv_shard0_backlog"], 4.0);
        assert_eq!(samples["mem_pool_allocs"], 12.0);
        assert_eq!(samples["kv_client_e2e_latency_ns_count"], 4.0);
        let sum = samples["kv_client_e2e_latency_ns_sum"];
        let mean = h.with(|h| h.mean());
        assert!((sum - mean * 4.0).abs() < 1e-6);
        let p50 = samples["kv_client_e2e_latency_ns{quantile=\"0.5\"}"];
        assert_eq!(p50, h.with(|h| h.p50()) as f64);
    }

    #[test]
    fn exemplars_link_buckets_to_request_ids() {
        let r = MetricsRegistry::default();
        let h = r.histogram("lat");
        // A crowd of fast requests and two distinct slow outliers.
        for i in 0..100u64 {
            h.record_exemplar(1_000 + i, i);
        }
        h.record_exemplar(1_000_000, 777);
        h.record_exemplar(900_000, 778); // same group, smaller: not retained
        h.record_exemplar(40_000, 555);
        // The p99.9 bucket points at the concrete worst request.
        let p999 = h.with(|h| h.quantile(0.999));
        let e = h.exemplar_for(p999).expect("tail exemplar");
        assert_eq!(e.req_id, 777);
        assert_eq!(e.value, 1_000_000);
        // A mid-range lookup finds the mid-range outlier.
        let e = h.exemplar_for(33_000).expect("mid exemplar");
        assert_eq!(e.req_id, 555);
        // Lookups above every recorded value fall back to the largest.
        let e = h.exemplar_for(u64::MAX).expect("fallback");
        assert_eq!(e.req_id, 777);
        // Exemplars list is ascending by value and bounded by group count.
        let all = h.exemplars();
        assert!(all.windows(2).all(|w| w[0].value <= w[1].value));
        assert!(all.len() <= super::EXEMPLAR_GROUPS);
        // Snapshot JSON carries them.
        let json_doc = format!("{{{}}}", r.snapshot_json_members());
        json::validate(&json_doc).expect("valid");
        assert!(json_doc.contains("\"req_id\": 777"));
    }
}
