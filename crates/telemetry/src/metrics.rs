//! Named counters, gauges, and virtual-time histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`VtHistogram`]) are cheap `Rc` clones
//! that call sites cache once and update without any registry lookup on the
//! hot path. The registry itself is only consulted when a metric is created
//! or a snapshot is taken.
//!
//! Thread-safe producers (cf-mem, which is `Send`/`Sync`) publish
//! `Arc<AtomicU64>` cells instead, registered here as *external* gauges and
//! read at snapshot time.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cf_sim::Histogram;

use crate::json;

/// Monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Instantaneous-value gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: f64) {
        self.0.set(self.0.get() + d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Histogram handle recording virtual-time durations (or any `u64` values),
/// backed by [`cf_sim::Histogram`].
#[derive(Clone, Debug, Default)]
pub struct VtHistogram(Rc<RefCell<Histogram>>);

impl VtHistogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Runs `f` against the underlying histogram.
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self.0.borrow())
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, VtHistogram>,
    externals: BTreeMap<String, Arc<AtomicU64>>,
}

/// Registry of named metrics, snapshotable to JSON and Prometheus text.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RefCell<RegistryInner>,
}

impl MetricsRegistry {
    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Returns (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> VtHistogram {
        let mut inner = self.inner.borrow_mut();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = VtHistogram::default();
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Registers a thread-safe external cell (read with `Ordering::Relaxed`
    /// at snapshot time). Used by `cf-mem`, whose stats must stay `Sync`.
    pub fn register_external(&self, name: &str, cell: Arc<AtomicU64>) {
        self.inner
            .borrow_mut()
            .externals
            .insert(name.to_string(), cell);
    }

    /// All counter values plus externals, sorted by name (for assertions).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let inner = self.inner.borrow();
        inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .chain(
                inner
                    .externals
                    .iter()
                    .map(|(n, e)| (n.clone(), e.load(Ordering::Relaxed))),
            )
            .collect()
    }

    /// Renders the `"counters"`, `"gauges"`, and `"histograms"` members of a
    /// JSON snapshot object (no surrounding braces).
    pub(crate) fn snapshot_json_members(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        out.push_str("\"counters\": {");
        let mut first = true;
        for (name, c) in &inner.counters {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", json::escape(name), c.get()));
        }
        for (name, e) in &inner.externals {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                json::escape(name),
                e.load(Ordering::Relaxed)
            ));
        }
        out.push_str("},\n\"gauges\": {");
        first = true;
        for (name, g) in &inner.gauges {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                json::escape(name),
                json::num(g.get())
            ));
        }
        out.push_str("},\n\"histograms\": {");
        first = true;
        for (name, h) in &inner.histograms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            h.with(|h| {
                out.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                    json::escape(name),
                    h.count(),
                    h.min(),
                    h.max(),
                    json::num(h.mean()),
                    h.p50(),
                    h.p99(),
                ));
            });
        }
        out.push('}');
        out
    }

    /// Renders the registry in Prometheus text exposition format. Metric
    /// names are sanitized (`.` and `-` become `_`).
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.get()));
        }
        for (name, e) in &inner.externals {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n} {}\n",
                e.load(Ordering::Relaxed)
            ));
        }
        for (name, g) in &inner.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.get()));
        }
        for (name, h) in &inner.histograms {
            let n = sanitize(name);
            h.with(|h| {
                out.push_str(&format!("# TYPE {n} summary\n"));
                for (q, v) in [(0.5, h.p50()), (0.99, h.p99())] {
                    out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
                }
                out.push_str(&format!("{n}_count {}\n", h.count()));
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let r = MetricsRegistry::default();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        let g = r.gauge("g");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(r.gauge("g").get(), 1.5);
        let h = r.histogram("h");
        h.record(10);
        h.record(20);
        assert_eq!(r.histogram("h").with(|h| h.count()), 2);
    }

    #[test]
    fn externals_appear_in_counter_values() {
        let r = MetricsRegistry::default();
        let cell = Arc::new(AtomicU64::new(0));
        r.register_external("mem.x", Arc::clone(&cell));
        cell.store(42, Ordering::Relaxed);
        let vals = r.counter_values();
        assert!(vals.contains(&("mem.x".to_string(), 42)));
    }

    #[test]
    fn snapshot_members_are_valid_json() {
        let r = MetricsRegistry::default();
        r.counter("c.one").add(7);
        r.gauge("g-two").set(0.25);
        r.histogram("h three").record(99);
        r.register_external("ext", Arc::new(AtomicU64::new(3)));
        let json_doc = format!("{{{}}}", r.snapshot_json_members());
        crate::json::validate(&json_doc).expect("valid snapshot JSON");
        assert!(json_doc.contains("\"c.one\": 7"));
        assert!(json_doc.contains("\"ext\": 3"));
    }

    #[test]
    fn prometheus_text_shape() {
        let r = MetricsRegistry::default();
        r.counter("nic.tx-frames").add(2);
        r.histogram("lat").record(5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE nic_tx_frames counter"));
        assert!(text.contains("nic_tx_frames 2"));
        assert!(text.contains("lat{quantile=\"0.5\"}"));
        assert!(text.contains("lat_count 1"));
    }
}
