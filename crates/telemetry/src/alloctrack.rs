//! Allocation counting for zero-alloc proofs (real heap, not virtual time).
//!
//! The hot-path contract (DESIGN.md "Hot-path memory discipline") is proven
//! at the allocator: a test binary installs [`CountingAlloc`] as its
//! `#[global_allocator]`, warms the path under test, then asserts that a
//! measured window performs exactly zero heap allocations. This module
//! holds the shared harness so every proof counts the same way.
//!
//! ```ignore
//! use cf_telemetry::alloctrack::{alloc_count, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! // ... warm up ...
//! let before = alloc_count();
//! hot_path();
//! assert_eq!(alloc_count() - before, 0);
//! ```
//!
//! Counting is per-thread and counts *acquisitions* (`alloc` + `realloc`),
//! not frees: a steady-state path that allocates and immediately frees is
//! still churning the allocator and still fails the proof. `dealloc` is
//! deliberately uncounted so that dropping warmup garbage inside a measured
//! window does not register as churn.
//!
//! [`AllocTrap`] is a debugging aid, not a proof mechanism: while a trap
//! guard is alive the *next* allocation panics with a backtrace, pointing
//! at the exact call site that broke a zero-alloc window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TRAP: Cell<bool> = const { Cell::new(false) };
}

/// A `#[global_allocator]` that forwards to [`System`] and counts
/// per-thread allocation acquisitions.
///
/// Install one `static` per test/bench binary (Rust allows exactly one
/// global allocator per binary); the counter itself lives in this crate so
/// all binaries share the same accounting rules.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_acquisition();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_acquisition();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_acquisition();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[inline]
fn note_acquisition() {
    ALLOCS.with(|c| c.set(c.get() + 1));
    TRAP.with(|t| {
        if t.get() {
            // Disarm before panicking: the panic machinery itself
            // allocates, and a still-armed trap would recurse.
            t.set(false);
            panic!("heap allocation inside a no-alloc section (AllocTrap armed)");
        }
    });
}

/// Allocation acquisitions observed on this thread since it started.
///
/// Meaningful only in a binary whose `#[global_allocator]` is
/// [`CountingAlloc`]; otherwise it stays 0.
pub fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Panics at the first allocation while alive (see module docs).
///
/// Dropping the guard disarms the trap. Guards do not nest meaningfully —
/// the trap is a single thread-local flag.
pub struct AllocTrap {
    _priv: (),
}

impl AllocTrap {
    /// Arms the trap for the current thread.
    pub fn armed() -> Self {
        TRAP.with(|t| t.set(true));
        AllocTrap { _priv: () }
    }
}

impl Drop for AllocTrap {
    fn drop(&mut self) {
        TRAP.with(|t| t.set(false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // No `#[global_allocator]` here (the library's unit-test binary keeps
    // the system allocator), so these tests exercise the counter plumbing
    // directly rather than through real allocations.

    #[test]
    fn counter_starts_at_zero_without_installation() {
        // Fresh thread => fresh thread-local counter.
        std::thread::spawn(|| assert_eq!(alloc_count(), 0))
            .join()
            .unwrap();
    }

    #[test]
    fn note_acquisition_increments_and_trap_fires_once() {
        std::thread::spawn(|| {
            let before = alloc_count();
            note_acquisition();
            assert_eq!(alloc_count(), before + 1);

            let guard = AllocTrap::armed();
            let hit = std::panic::catch_unwind(note_acquisition).is_err();
            assert!(hit, "armed trap must panic on the next acquisition");
            // The trap disarmed itself before panicking.
            assert!(std::panic::catch_unwind(note_acquisition).is_ok());
            drop(guard);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn trap_guard_disarms_on_drop() {
        std::thread::spawn(|| {
            {
                let _guard = AllocTrap::armed();
            }
            assert!(std::panic::catch_unwind(note_acquisition).is_ok());
        })
        .join()
        .unwrap();
    }
}
