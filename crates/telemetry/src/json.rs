//! Tiny hand-rolled JSON support: escaping, number formatting, and a
//! validating parser.
//!
//! The workspace builds offline with no external crates, so exporters
//! assemble JSON by hand. The validator exists so tests (and the
//! `trace_request` example) can prove emitted artifacts are well-formed
//! without a serde dependency.

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite; falls back to 0 for NaN/inf,
/// which JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

/// Validates that `s` is one complete JSON value. Returns the byte offset
/// and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        _ => return self.err("bad escape"),
                    };
                }
                c if c < 0x20 => return self.err("raw control char in string"),
                _ => {}
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            saw_digit = true;
        }
        if !saw_digit {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e3",
            "\"a\\nb\"",
            r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": true}"#,
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} {}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = format!("\"{}\"", escape("weird \"str\" \\ \n \t \u{1} ok"));
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(f64::NAN), "0");
    }
}
