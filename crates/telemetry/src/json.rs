//! Tiny hand-rolled JSON support: escaping, number formatting, and a
//! validating parser.
//!
//! The workspace builds offline with no external crates, so exporters
//! assemble JSON by hand. The validator exists so tests (and the
//! `trace_request` example) can prove emitted artifacts are well-formed
//! without a serde dependency.

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite; falls back to 0 for NaN/inf,
/// which JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value, for tests and report tooling that need to inspect
/// exported documents (object member order is preserved).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses `s` as one complete JSON value. Returns the byte offset and
/// message of the first error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Validates that `s` is one complete JSON value. Returns the byte offset
/// and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code = 0u32;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => {
                                        code = code * 16 + (h as char).to_digit(16).unwrap();
                                        self.pos += 1;
                                    }
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                            // Surrogate halves decode to U+FFFD; exporters
                            // here never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        Some(e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(match e {
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                other => other as char,
                            });
                            self.pos += 1;
                        }
                        _ => return self.err("bad escape"),
                    };
                }
                c if c < 0x20 => return self.err("raw control char in string"),
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences from raw bytes.
                    let start = self.pos - 1;
                    let width = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = (start + width).min(self.b.len());
                    match std::str::from_utf8(&self.b[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
        self.err("unterminated string")
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            saw_digit = true;
        }
        if !saw_digit {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e3",
            "\"a\\nb\"",
            r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": true}"#,
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} {}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = format!("\"{}\"", escape("weird \"str\" \\ \n \t \u{1} ok"));
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn parse_builds_values_with_member_order() {
        let v = parse(r#"{"b": [1, -2.5, "x\ny"], "a": {"n": null, "t": true}}"#).unwrap();
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().get("n"), Some(&Value::Null));
        assert_eq!(v.get("a").unwrap().get("t"), Some(&Value::Bool(true)));
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"], "member order preserved");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_escapes_and_unicode() {
        let original = "tab\t quote\" back\\ nl\n é π \u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
        // \uXXXX escapes decode too.
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
