//! Virtual-time span tracing with a preallocated ring buffer and a Chrome
//! Trace Event exporter.
//!
//! Spans are timestamped from the shared [`cf_sim::Clock`], so a trace shows
//! *simulated* cost, not wall time. Opening and closing spans never
//! allocates: completed spans overwrite the oldest slot of a ring buffer
//! sized at construction, and the open-span stack reuses preallocated
//! capacity. Virtual-time charges reported through
//! [`cf_sim::ChargeObserver`] are attributed to the *innermost* open span
//! (self time), so summing `cat_ns` over all spans counts every charge
//! exactly once regardless of nesting — the property the Figure 11
//! cross-check test relies on.

use cf_sim::cost::{Category, NUM_CATEGORIES};

use crate::json;

/// A completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Phase name (e.g. `"deserialize"`).
    pub name: &'static str,
    /// Request id the span belongs to (0 when outside any request).
    pub req_id: u64,
    /// Virtual start time in ns.
    pub start_ns: u64,
    /// Virtual end time in ns.
    pub end_ns: u64,
    /// Nesting depth at open time (0 = root).
    pub depth: u16,
    /// Self time charged per category while this span was innermost.
    pub cat_ns: [f64; NUM_CATEGORIES],
}

#[derive(Clone, Debug)]
struct OpenSpan {
    name: &'static str,
    req_id: u64,
    start_ns: u64,
    cat_ns: [f64; NUM_CATEGORIES],
}

/// Ring-buffered span storage plus running per-category totals.
#[derive(Debug)]
pub struct Tracer {
    ring: Vec<SpanRecord>,
    capacity: usize,
    /// Next slot to (over)write.
    head: usize,
    /// Number of valid records (`<= capacity`).
    len: usize,
    stack: Vec<OpenSpan>,
    /// Spans evicted from the ring because it was full.
    pub dropped_spans: u64,
    /// Total spans completed (ring-resident or evicted).
    pub spans_closed: u64,
    /// Per-category self time summed over *closed* spans (survives ring
    /// eviction, so totals are exact regardless of ring capacity).
    pub closed_cat_ns: [f64; NUM_CATEGORIES],
    /// Charges observed while no span was open.
    pub orphan_cat_ns: [f64; NUM_CATEGORIES],
}

impl Tracer {
    /// Creates a tracer whose ring holds `capacity` completed spans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer ring capacity must be positive");
        Tracer {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            stack: Vec::with_capacity(64),
            dropped_spans: 0,
            spans_closed: 0,
            closed_cat_ns: [0.0; NUM_CATEGORIES],
            orphan_cat_ns: [0.0; NUM_CATEGORIES],
        }
    }

    /// Opens a span. `req_id = None` inherits the enclosing span's id.
    pub fn open(&mut self, name: &'static str, req_id: Option<u64>, now_ns: u64) {
        let req_id = req_id.unwrap_or_else(|| self.stack.last().map_or(0, |s| s.req_id));
        self.stack.push(OpenSpan {
            name,
            req_id,
            start_ns: now_ns,
            cat_ns: [0.0; NUM_CATEGORIES],
        });
    }

    /// Closes the innermost span (LIFO discipline; span guards enforce it).
    pub fn close(&mut self, now_ns: u64) {
        let Some(open) = self.stack.pop() else {
            return;
        };
        for (total, ns) in self.closed_cat_ns.iter_mut().zip(open.cat_ns.iter()) {
            *total += ns;
        }
        self.spans_closed += 1;
        let record = SpanRecord {
            name: open.name,
            req_id: open.req_id,
            start_ns: open.start_ns,
            end_ns: now_ns,
            depth: self.stack.len() as u16,
            cat_ns: open.cat_ns,
        };
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            self.ring[self.head] = record;
            self.dropped_spans += 1;
        }
        self.head = (self.head + 1) % self.capacity;
        self.len = self.ring.len();
    }

    /// Attributes a charge to the innermost open span (or the orphan bucket).
    #[inline]
    pub fn on_charge(&mut self, cat: Category, ns: f64) {
        match self.stack.last_mut() {
            Some(open) => open.cat_ns[cat.index()] += ns,
            None => self.orphan_cat_ns[cat.index()] += ns,
        }
    }

    /// Per-category totals over all closed spans plus currently open spans.
    /// Excludes orphan charges (see [`Tracer::orphan_cat_ns`]).
    pub fn span_cat_totals(&self) -> [f64; NUM_CATEGORIES] {
        let mut totals = self.closed_cat_ns;
        for open in &self.stack {
            for (t, ns) in totals.iter_mut().zip(open.cat_ns.iter()) {
                *t += ns;
            }
        }
        totals
    }

    /// Number of spans currently open.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Completed spans in chronological (oldest-first) order.
    pub fn iter_chronological(&self) -> impl Iterator<Item = &SpanRecord> {
        let start = if self.len < self.capacity {
            0
        } else {
            self.head
        };
        (0..self.len).map(move |i| &self.ring[(start + i) % self.len.max(1)])
    }

    /// Clears spans, totals, and the open stack (e.g. after warmup).
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.len = 0;
        self.stack.clear();
        self.dropped_spans = 0;
        self.spans_closed = 0;
        self.closed_cat_ns = [0.0; NUM_CATEGORIES];
        self.orphan_cat_ns = [0.0; NUM_CATEGORIES];
    }

    /// Exports ring-resident spans as Chrome Trace Event JSON: a bare array
    /// of `ph:"X"` (complete) events, `ts`/`dur` in microseconds of virtual
    /// time. Loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for span in self.iter_chronological() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ts_us = span.start_ns as f64 / 1_000.0;
            let dur_us = (span.end_ns.saturating_sub(span.start_ns)) as f64 / 1_000.0;
            let mut args = format!("\"req_id\": {}", span.req_id);
            for cat in Category::all() {
                let ns = span.cat_ns[cat.index()];
                if ns > 0.0 {
                    args.push_str(&format!(
                        ", \"{}_ns\": {}",
                        json::escape(cat.label()),
                        json::num(ns)
                    ));
                }
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"vt\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 0, \"tid\": {}, \"args\": {{{}}}}}",
                json::escape(span.name),
                json::num(ts_us),
                json::num(dur_us),
                span.depth,
                args
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn innermost_span_gets_the_charge() {
        let mut t = Tracer::new(16);
        t.open("request", Some(7), 0);
        t.on_charge(Category::Rx, 10.0);
        t.open("deserialize", None, 10);
        t.on_charge(Category::Deserialize, 5.0);
        t.close(15); // deserialize
        t.on_charge(Category::Tx, 2.0);
        t.close(17); // request
        let spans: Vec<_> = t.iter_chronological().cloned().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "deserialize");
        assert_eq!(spans[0].req_id, 7, "req id inherited");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].cat_ns[Category::Deserialize.index()], 5.0);
        assert_eq!(spans[1].name, "request");
        assert_eq!(spans[1].cat_ns[Category::Rx.index()], 10.0);
        assert_eq!(
            spans[1].cat_ns[Category::Deserialize.index()],
            0.0,
            "self time only"
        );
        let totals = t.span_cat_totals();
        assert_eq!(totals[Category::Rx.index()], 10.0);
        assert_eq!(totals[Category::Deserialize.index()], 5.0);
        assert_eq!(totals[Category::Tx.index()], 2.0);
    }

    #[test]
    fn orphan_charges_tracked_separately() {
        let mut t = Tracer::new(4);
        t.on_charge(Category::Other, 3.0);
        assert_eq!(t.orphan_cat_ns[Category::Other.index()], 3.0);
        assert_eq!(t.span_cat_totals()[Category::Other.index()], 0.0);
    }

    #[test]
    fn ring_overflow_keeps_newest_and_exact_totals() {
        let mut t = Tracer::new(2);
        for i in 0..5u64 {
            t.open("s", Some(i), i * 10);
            t.on_charge(Category::Rx, 1.0);
            t.close(i * 10 + 5);
        }
        assert_eq!(t.spans_closed, 5);
        assert_eq!(t.dropped_spans, 3);
        let ids: Vec<u64> = t.iter_chronological().map(|s| s.req_id).collect();
        assert_eq!(ids, vec![3, 4], "oldest evicted first");
        assert_eq!(
            t.span_cat_totals()[Category::Rx.index()],
            5.0,
            "totals survive eviction"
        );
    }

    #[test]
    fn chronological_order_before_wraparound() {
        let mut t = Tracer::new(8);
        for i in 0..3u64 {
            t.open("s", Some(i), i);
            t.close(i + 1);
        }
        let ids: Vec<u64> = t.iter_chronological().map(|s| s.req_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn chrome_export_is_valid_json_with_x_events() {
        let mut t = Tracer::new(8);
        t.open("request", Some(1), 1_000);
        t.open("app \"quoted\"", None, 1_200);
        t.on_charge(Category::AppGet, 50.0);
        t.close(1_500);
        t.close(2_000);
        let trace = t.chrome_trace_json();
        crate::json::validate(&trace).expect("valid trace JSON");
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ts\": 1"), "µs virtual timestamps");
        assert!(trace.contains("\"get_ns\": 50"));
    }

    /// Parses the Chrome export and validates every event against the Trace
    /// Event Format schema slice we emit: complete (`ph:"X"`) events with
    /// string `name`/`cat`, numeric `ts`/`dur`/`pid`/`tid`, and an `args`
    /// object carrying a numeric `req_id`.
    fn check_chrome_schema(trace: &str) -> Vec<crate::json::Value> {
        let doc = crate::json::parse(trace).expect("trace parses");
        let events = doc.as_arr().expect("top level is an array").to_vec();
        for ev in &events {
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert_eq!(ev.get("cat").unwrap().as_str(), Some("vt"));
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert_eq!(ev.get("pid").unwrap().as_u64(), Some(0));
            assert!(ev.get("tid").unwrap().as_u64().is_some());
            assert!(ev
                .get("args")
                .unwrap()
                .get("req_id")
                .unwrap()
                .as_u64()
                .is_some());
        }
        events
    }

    #[test]
    fn chrome_export_schema_validates() {
        let mut t = Tracer::new(16);
        t.open("request", Some(42), 1_000);
        t.open("deserialize", None, 1_100);
        t.close(1_400);
        t.open("app", None, 1_400);
        t.on_charge(Category::AppGet, 25.0);
        t.close(1_600);
        t.close(2_200);
        let events = check_chrome_schema(&t.chrome_trace_json());
        assert_eq!(events.len(), 3);
        // All three spans belong to request 42 (children inherit the id).
        for ev in &events {
            assert_eq!(
                ev.get("args").unwrap().get("req_id").unwrap().as_u64(),
                Some(42)
            );
        }
    }

    #[test]
    fn nested_spans_export_with_depth_as_tid_and_contained_intervals() {
        let mut t = Tracer::new(16);
        t.open("request", Some(1), 0);
        t.open("inner", None, 2_000);
        t.open("innermost", None, 3_000);
        t.close(4_000);
        t.close(6_000);
        t.close(10_000);
        let events = check_chrome_schema(&t.chrome_trace_json());
        // Chronological by close: innermost, inner, request.
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["innermost", "inner", "request"]);
        let tids: Vec<u64> = events
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids, [2, 1, 0], "tid encodes nesting depth");
        // Each child interval is contained in its parent's.
        let iv = |e: &crate::json::Value| {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            (ts, ts + e.get("dur").unwrap().as_f64().unwrap())
        };
        let (inner_s, inner_e) = iv(&events[1]);
        let (root_s, root_e) = iv(&events[2]);
        let (leaf_s, leaf_e) = iv(&events[0]);
        assert!(root_s <= inner_s && inner_e <= root_e);
        assert!(inner_s <= leaf_s && leaf_e <= inner_e);
    }

    #[test]
    fn overlapping_sibling_spans_do_not_bleed_attribution() {
        let mut t = Tracer::new(16);
        // Two requests interleave at the same depth: request 1's span closes
        // while request 2's is already open (e.g. pipelined handling).
        t.open("request", Some(1), 0);
        t.on_charge(Category::Rx, 10.0);
        t.close(100);
        t.open("request", Some(2), 50);
        t.on_charge(Category::Rx, 20.0);
        t.close(200);
        let events = check_chrome_schema(&t.chrome_trace_json());
        assert_eq!(events.len(), 2);
        let by_req = |id: u64| {
            events
                .iter()
                .find(|e| e.get("args").unwrap().get("req_id").unwrap().as_u64() == Some(id))
                .unwrap()
        };
        let rx = |e: &&crate::json::Value| {
            e.get("args")
                .unwrap()
                .get("rx_ns")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        assert_eq!(rx(&by_req(1)), 10.0);
        assert_eq!(rx(&by_req(2)), 20.0);
    }

    #[test]
    fn zero_duration_spans_export_cleanly() {
        let mut t = Tracer::new(8);
        t.open("instant", Some(3), 500);
        t.close(500); // same virtual instant
        let events = check_chrome_schema(&t.chrome_trace_json());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(0.0));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(0.5));
        // And an end time recorded before the start never underflows.
        let mut t = Tracer::new(8);
        t.open("clock-skew", Some(4), 900);
        t.close(800);
        let events = check_chrome_schema(&t.chrome_trace_json());
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = Tracer::new(4);
        t.open("s", Some(1), 0);
        t.on_charge(Category::Rx, 1.0);
        t.close(1);
        t.on_charge(Category::Tx, 1.0);
        t.reset();
        assert_eq!(t.spans_closed, 0);
        assert_eq!(t.open_depth(), 0);
        assert_eq!(t.iter_chronological().count(), 0);
        assert_eq!(t.span_cat_totals().iter().sum::<f64>(), 0.0);
        assert_eq!(t.orphan_cat_ns.iter().sum::<f64>(), 0.0);
    }
}
