//! `cf-telemetry`: virtual-time observability for the Cornflakes datapath.
//!
//! Three instruments behind one cheaply clonable [`Telemetry`] handle:
//!
//! 1. **Span tracing** ([`trace`]): per-request phase spans stamped in
//!    *virtual* nanoseconds from the shared [`cf_sim::Clock`], stored in a
//!    preallocated ring buffer and exportable as Chrome Trace Event JSON
//!    (open in `chrome://tracing` or Perfetto). Virtual-time charges are
//!    attributed to the innermost open span via [`cf_sim::ChargeObserver`].
//! 2. **Metrics** ([`metrics`]): named counters, gauges, and virtual-time
//!    histograms, snapshotable to JSON and Prometheus text.
//! 3. **Serializer decision logging** ([`decisions`]): every `CFBytes`
//!    construction records size, threshold, copy-vs-zero-copy choice, and
//!    `recover_ptr` hit/miss.
//!
//! A fourth instrument, the request-scoped **flight recorder** ([`flight`]),
//! is a standalone handle rather than part of [`Telemetry`]: one recorder is
//! shared across *machines* (client and server install the same clone), so
//! a request's events interleave into a single cross-layer timeline keyed
//! by the wire's request id.
//!
//! A disabled handle ([`Telemetry::disabled`]) is a `None` inside an
//! `Option<Rc<_>>`: every hot-path operation short-circuits on one branch
//! and no memory is allocated, so instrumented code needs no cfg gates.
//!
//! Telemetry is intentionally `!Send` (`Rc`/`RefCell`-based) because each
//! simulated machine is single-threaded by construction. The thread-safe
//! `cf-mem` crate publishes `Arc<AtomicU64>` cells instead, registered via
//! [`Telemetry::register_external`].

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use cf_sim::cost::{Category, ChargeObserver, NUM_CATEGORIES};
use cf_sim::{Clock, Sim};

pub mod alloctrack;
pub mod decisions;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use alloctrack::{alloc_count, AllocTrap, CountingAlloc};
pub use decisions::FieldDecision;
pub use flight::{FlightEvent, FlightRecord, FlightRecorder};
pub use metrics::{Counter, Gauge, MetricsRegistry, VtHistogram};
pub use trace::{SpanRecord, Tracer};

/// Sizing knobs for the preallocated telemetry buffers.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Completed spans retained in the trace ring.
    pub span_capacity: usize,
    /// Recent serializer decisions retained (aggregates are unbounded).
    pub decision_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            span_capacity: 16_384,
            decision_capacity: 256,
        }
    }
}

struct Inner {
    clock: Clock,
    tracer: RefCell<Tracer>,
    metrics: MetricsRegistry,
    decisions: RefCell<decisions::DecisionLog>,
}

impl ChargeObserver for Inner {
    // Called by `Sim` while its core is mutably borrowed: this must not (and
    // does not) call back into `Sim` — it only touches telemetry-owned state.
    fn on_charge(&self, cat: Category, ns: f64) {
        self.tracer.borrow_mut().on_charge(cat, ns);
    }
}

/// Handle to one machine's telemetry. Cloning shares the underlying state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Rc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => f.write_str("Telemetry(enabled)"),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// A no-op handle: spans, counters, and decisions all short-circuit.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Creates an enabled handle reading virtual time from `clock`.
    ///
    /// This does **not** hook charge attribution; prefer
    /// [`Telemetry::attach`] which also installs the [`ChargeObserver`].
    pub fn new(clock: Clock, config: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Rc::new(Inner {
                clock,
                tracer: RefCell::new(Tracer::new(config.span_capacity)),
                metrics: MetricsRegistry::default(),
                decisions: RefCell::new(decisions::DecisionLog::new(config.decision_capacity)),
            })),
        }
    }

    /// Creates an enabled handle for `sim`'s machine and installs it as the
    /// machine's charge observer, so per-category cost flows into spans.
    pub fn attach(sim: &Sim) -> Self {
        Self::attach_with(sim, TelemetryConfig::default())
    }

    /// [`Telemetry::attach`] with explicit buffer sizing.
    pub fn attach_with(sim: &Sim, config: TelemetryConfig) -> Self {
        let t = Telemetry::new(sim.clock(), config);
        let inner = Rc::clone(t.inner.as_ref().expect("just created enabled"));
        sim.set_charge_observer(Some(inner));
        t
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- spans ----------------------------------------------------------

    /// Opens a span; it closes when the returned guard drops (LIFO).
    /// The span inherits the enclosing span's request id.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_open(name, None)
    }

    /// Opens a root span tagged with an explicit request id.
    #[inline]
    pub fn request_span(&self, name: &'static str, req_id: u64) -> SpanGuard {
        self.span_open(name, Some(req_id))
    }

    fn span_open(&self, name: &'static str, req_id: Option<u64>) -> SpanGuard {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now();
            inner.tracer.borrow_mut().open(name, req_id, now);
        }
        SpanGuard {
            telemetry: self.clone(),
        }
    }

    fn span_close(&self) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now();
            inner.tracer.borrow_mut().close(now);
        }
    }

    /// Runs `f` with the tracer (no-op returning `None` when disabled).
    pub fn with_tracer<R>(&self, f: impl FnOnce(&Tracer) -> R) -> Option<R> {
        self.inner.as_ref().map(|i| f(&i.tracer.borrow()))
    }

    /// Per-category self-time totals over all spans (closed + open).
    /// Disabled handles return zeros.
    pub fn span_cat_totals(&self) -> [f64; NUM_CATEGORIES] {
        self.with_tracer(|t| t.span_cat_totals())
            .unwrap_or([0.0; NUM_CATEGORIES])
    }

    /// Charges observed while no span was open.
    pub fn orphan_cat_totals(&self) -> [f64; NUM_CATEGORIES] {
        self.with_tracer(|t| t.orphan_cat_ns)
            .unwrap_or([0.0; NUM_CATEGORIES])
    }

    /// Exports the span ring as Chrome Trace Event JSON (see [`Tracer`]).
    pub fn chrome_trace_json(&self) -> String {
        self.with_tracer(|t| t.chrome_trace_json())
            .unwrap_or_else(|| "[]\n".to_string())
    }

    /// Clears spans and span totals (e.g. after warmup), keeping metrics
    /// and decision aggregates.
    pub fn reset_tracing(&self) {
        if let Some(inner) = &self.inner {
            inner.tracer.borrow_mut().reset();
        }
    }

    // ---- metrics --------------------------------------------------------

    /// Counter handle for `name`. Disabled handles return an unregistered
    /// (but functional) counter, so call sites never branch.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::default(),
        }
    }

    /// Gauge handle for `name` (unregistered when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Histogram handle for `name` (unregistered when disabled).
    pub fn histogram(&self, name: &str) -> VtHistogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => VtHistogram::default(),
        }
    }

    /// Registers a thread-safe external cell (e.g. cf-mem pool stats) that
    /// snapshots read at collection time. No-op when disabled.
    pub fn register_external(&self, name: &str, cell: Arc<AtomicU64>) {
        if let Some(inner) = &self.inner {
            inner.metrics.register_external(name, cell);
        }
    }

    /// Runs `f` with the metrics registry (no-op returning `None` when
    /// disabled).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|i| f(&i.metrics))
    }

    /// Current value of counter `name` (externals included); 0 if absent or
    /// disabled. Convenience for tests.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.with_metrics(|m| {
            m.counter_values()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or(0)
        })
        .unwrap_or(0)
    }

    // ---- serializer decisions -------------------------------------------

    /// Records one hybrid-serializer decision. No-op when disabled.
    #[inline]
    pub fn record_decision(&self, d: FieldDecision) {
        if let Some(inner) = &self.inner {
            inner.decisions.borrow_mut().record(d);
        }
    }

    /// Runs `f` with the decision log (no-op returning `None` when
    /// disabled).
    pub fn with_decisions<R>(&self, f: impl FnOnce(&decisions::DecisionLog) -> R) -> Option<R> {
        self.inner.as_ref().map(|i| f(&i.decisions.borrow()))
    }

    // ---- exporters ------------------------------------------------------

    /// Snapshot of counters, gauges, histograms, serializer decisions, and
    /// span bookkeeping as one JSON object.
    pub fn snapshot_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{}\n".to_string();
        };
        let tracer = inner.tracer.borrow();
        let spans = format!(
            "{{\"closed\": {}, \"dropped\": {}, \"open\": {}, \"orphan_ns\": {}}}",
            tracer.spans_closed,
            tracer.dropped_spans,
            tracer.open_depth(),
            json::num(tracer.orphan_cat_ns.iter().sum()),
        );
        format!(
            "{{\n\"virtual_now_ns\": {},\n{},\n\"decisions\": {},\n\"spans\": {}\n}}\n",
            inner.clock.now(),
            inner.metrics.snapshot_json_members(),
            inner.decisions.borrow().summary_json(),
            spans,
        )
    }

    /// Counters/gauges/histograms in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.with_metrics(|m| m.prometheus_text())
            .unwrap_or_default()
    }
}

/// RAII guard closing its span on drop.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    telemetry: Telemetry,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.telemetry.span_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_sim::{MachineProfile, Sim};

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        {
            let _g = t.request_span("request", 1);
            t.counter("x").inc();
            t.record_decision(FieldDecision {
                len: 1,
                threshold: 2,
                recover_attempted: false,
                recover_hit: false,
                zero_copy: false,
            });
        }
        assert_eq!(t.snapshot_json(), "{}\n");
        assert_eq!(t.chrome_trace_json(), "[]\n");
        assert_eq!(t.counter_value("x"), 0);
    }

    #[test]
    fn attach_observes_charges_into_spans() {
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let t = Telemetry::attach(&sim);
        {
            let _req = t.request_span("request", 42);
            sim.charge(Category::Rx, 100.0);
            {
                let _app = t.span("app");
                sim.charge(Category::AppGet, 30.0);
            }
            sim.charge(Category::Tx, 20.0);
        }
        let totals = t.span_cat_totals();
        assert_eq!(totals[Category::Rx.index()], 100.0);
        assert_eq!(totals[Category::AppGet.index()], 30.0);
        assert_eq!(totals[Category::Tx.index()], 20.0);
        // Span totals agree with the sim's own attribution.
        let attr = sim.attribution();
        for cat in Category::all() {
            assert_eq!(totals[cat.index()], attr.get(cat));
        }
        // Spans carry virtual timestamps.
        t.with_tracer(|tr| {
            let spans: Vec<_> = tr.iter_chronological().cloned().collect();
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].name, "app");
            assert_eq!(spans[0].req_id, 42);
            assert_eq!(spans[1].name, "request");
            assert_eq!(spans[1].end_ns, 150, "request span spans all charges");
        });
    }

    #[test]
    fn charges_outside_spans_are_orphans() {
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let t = Telemetry::attach(&sim);
        sim.charge(Category::Other, 5.0);
        assert_eq!(t.orphan_cat_totals()[Category::Other.index()], 5.0);
        assert_eq!(t.span_cat_totals().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let t = Telemetry::attach(&sim);
        t.counter("nic.tx_frames").add(3);
        t.gauge("mem.pool.occupancy").set(0.5);
        t.histogram("kv.latency_ns").record(1_234);
        t.record_decision(FieldDecision {
            len: 4096,
            threshold: 512,
            recover_attempted: true,
            recover_hit: true,
            zero_copy: true,
        });
        {
            let _g = t.request_span("request", 7);
            sim.charge(Category::Rx, 10.0);
        }
        let snap = t.snapshot_json();
        json::validate(&snap).expect("valid snapshot JSON");
        for needle in [
            "\"nic.tx_frames\": 3",
            "\"mem.pool.occupancy\": 0.5",
            "\"kv.latency_ns\"",
            "\"decisions\"",
            "\"zero_copy\": 1",
            "\"spans\"",
            "\"virtual_now_ns\": 10",
        ] {
            assert!(snap.contains(needle), "snapshot missing {needle}: {snap}");
        }
        let prom = t.prometheus_text();
        assert!(prom.contains("nic_tx_frames_total 3"));
    }
}
