//! Cross-check: span-derived per-category totals agree with the simulator's
//! own attribution (the Figure-11 data source).
//!
//! The telemetry tracer attributes every charge to the innermost open span,
//! so summing one category across all spans (plus any orphan charges) must
//! reproduce `SimCore`'s attribution array exactly. This test drives a
//! fig11-style CDN run per serialization system and requires agreement
//! within 1% per category — and that (almost) nothing lands outside a span.

use cf_bench::harness::KvBench;
use cf_sim::cost::Category;
use cf_sim::MachineProfile;
use cf_workloads::{key_string, CdnTrace};
use cornflakes_core::SerializationConfig;

use cf_kv::server::SerKind;

fn crosscheck(kind: SerKind) {
    let mut b = KvBench::with_profile(
        MachineProfile::microbench(),
        kind,
        SerializationConfig::hybrid(),
    );
    let num_objects = 200;
    for id in 0..num_objects {
        let sizes: Vec<usize> = (0..CdnTrace::num_segments(id))
            .map(|s| CdnTrace::segment_size(id, s))
            .collect();
        b.server
            .store
            .preload(b.server.stack.ctx(), key_string(id).as_bytes(), &sizes)
            .expect("pool sized");
    }
    let mut trace = CdnTrace::new(num_objects, 0x11C);
    let mut drive = |b: &mut KvBench| {
        let (id, seg, _last) = trace.next();
        let key = key_string(id);
        b.client.send_get_segment(key.as_bytes(), seg as u32);
        b.server.poll();
        let _ = b.client.recv_response();
    };
    for _ in 0..100 {
        drive(&mut b);
    }
    // Measured window: telemetry attaches at the same instant the
    // simulator's attribution resets, so both see identical charges.
    let tele = b.install_telemetry();
    b.server_sim.with_core(|c| c.attribution.reset());
    for _ in 0..400 {
        drive(&mut b);
    }

    let spans = tele.span_cat_totals();
    let orphans = tele.orphan_cat_totals();
    let attr = b.server_sim.attribution();
    let mut covered = 0.0;
    for cat in Category::all() {
        let expected = attr.get(cat);
        let got = spans[cat.index()] + orphans[cat.index()];
        let tolerance = (expected * 0.01).max(1e-6);
        assert!(
            (got - expected).abs() <= tolerance,
            "{kind:?}/{}: span-derived {got:.1} ns vs attribution {expected:.1} ns",
            cat.label(),
        );
        covered += spans[cat.index()];
    }
    // Every request-handling charge should land inside a span: the orphan
    // share of total attributed time must be negligible.
    let orphan_total: f64 = orphans.iter().sum();
    assert!(
        orphan_total <= attr.total() * 0.01,
        "{kind:?}: {orphan_total:.1} ns of {:.1} ns charged outside spans",
        attr.total(),
    );
    assert!(covered > 0.0, "{kind:?}: no charges observed in spans");
}

#[test]
fn cornflakes_span_totals_match_attribution() {
    crosscheck(SerKind::Cornflakes);
}

#[test]
fn protobuf_span_totals_match_attribution() {
    crosscheck(SerKind::Protobuf);
}

#[test]
fn flatbuffers_span_totals_match_attribution() {
    crosscheck(SerKind::FlatBuffers);
}

#[test]
fn capnproto_span_totals_match_attribution() {
    crosscheck(SerKind::CapnProto);
}
