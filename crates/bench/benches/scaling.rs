//! Multi-queue scaling: aggregate throughput vs queue count, 1→8 queues
//! over YCSB-C and the Twitter cache trace. Emits `scaling.json`.

fn main() {
    let (keys, requests) = if cf_bench::quick_mode() {
        (2_048, 4_000)
    } else {
        (16_384, 40_000)
    };
    cf_bench::experiments::scaling::run(keys, requests);
}
