//! Table 2: the CDN image trace.

fn main() {
    let (objects, requests) = if cf_bench::quick_mode() {
        (1_500, 800)
    } else {
        (4_000, 4_000)
    };
    cf_bench::experiments::table2::run(objects, requests);
}
