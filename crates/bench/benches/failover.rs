//! Fault-driven failover: kill a replica mid-workload in a 3-node R=3
//! cluster; measure the availability dip, detection time, and time for
//! goodput to recover to ≥90% of the pre-kill baseline. Emits
//! `failover.json`.

use cf_bench::experiments::failover;

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        failover::FailoverParams::quick()
    } else {
        failover::FailoverParams::full()
    };
    failover::run(&params);
}
