//! Goodput under overload: offered load 0.5×–4× of measured capacity on
//! the sharded multi-queue server, with overload control on and off.
//! Emits `overload.json`.

use cf_bench::experiments::overload;

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        overload::OverloadParams::quick()
    } else {
        overload::OverloadParams::full()
    };
    overload::run(&params);
}
