//! Figure 3: copy vs scatter-gather(+overheads) vs raw scatter-gather.

fn main() {
    let requests = if cf_bench::quick_mode() { 600 } else { 3_000 };
    cf_bench::experiments::fig03::run(40_000, requests);
}
