//! Figure 12 + Table 4: the hybrid threshold ablation.

fn main() {
    let quick = cf_bench::quick_mode();
    cf_bench::experiments::fig12::run_twitter(
        if quick { 10_000 } else { 40_000 },
        cf_bench::scaled_duration(10_000_000),
        50_000,
    );
    cf_bench::experiments::fig12::run_google(
        if quick { 5_000 } else { 20_000 },
        if quick { 400 } else { 1_500 },
    );
}
