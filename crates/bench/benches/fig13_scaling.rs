//! Figure 13: multicore scaling of the scatter-gather microbenchmark.

fn main() {
    let (values, requests) = if cf_bench::quick_mode() {
        (40_000, 600)
    } else {
        (160_000, 3_000)
    };
    cf_bench::experiments::fig13::run(&[1, 2, 4, 6, 8], values, requests);
}
