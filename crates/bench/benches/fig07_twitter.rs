//! Figure 7: the Twitter cache trace on the custom KV store.

fn main() {
    let keys = if cf_bench::quick_mode() {
        10_000
    } else {
        60_000
    };
    cf_bench::experiments::fig07::run(keys, cf_bench::scaled_duration(20_000_000), 53_000);
}
