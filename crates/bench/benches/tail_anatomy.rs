//! Tail-latency anatomy: run YCSB at 2× measured capacity with wire
//! faults and a flight recorder end to end; decompose p50/p99/p99.9 into
//! retry/queueing/sojourn/service/wire phases. Emits `tail_anatomy.json`.

use cf_bench::experiments::tail_anatomy;

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        tail_anatomy::TailAnatomyParams::quick()
    } else {
        tail_anatomy::TailAnatomyParams::full()
    };
    tail_anatomy::run(&params);
}
