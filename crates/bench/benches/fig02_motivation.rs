//! Figure 2: the motivating echo experiment (§2.2). Run with `cargo bench`.

fn main() {
    let duration = cf_bench::scaled_duration(20_000_000);
    cf_bench::experiments::fig02::run(duration);
}
