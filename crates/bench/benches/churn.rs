//! Connection-churn sweep: accept goodput, p99 request RTT, and the
//! flow-table memory ceiling as 1k → 64k flows churn through a bounded
//! [`cf_net::TcpListener`], plus the CI ratchet gate against the
//! committed `BENCH_churn.json`. Emits `churn.json`.
//!
//! Env knobs:
//! - `CF_QUICK` — CI-sized preset.
//! - `CF_CHURN_BASELINE` — baseline path (default `BENCH_churn.json`,
//!   falling back to the workspace root when invoked from elsewhere).
//! - `CF_CHURN_TOLERANCE` — goodput/RTT regression multiplier (default
//!   2.0; the memory ceiling always gets the fixed hard slack).
//! - `CF_CHURN_NO_RATCHET` — measure and emit only (used when
//!   regenerating the baseline itself).

use cf_bench::experiments::churn;
use cf_telemetry::CountingAlloc;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn baseline_path() -> std::path::PathBuf {
    if let Some(p) = std::env::var_os("CF_CHURN_BASELINE") {
        return p.into();
    }
    let local = std::path::PathBuf::from("BENCH_churn.json");
    if local.exists() {
        return local;
    }
    // Invoked from outside the workspace root: resolve relative to this
    // crate's manifest.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_churn.json")
}

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        churn::ChurnParams::quick()
    } else {
        churn::ChurnParams::full()
    };
    let report = churn::run(&params);

    if std::env::var_os("CF_CHURN_NO_RATCHET").is_some() {
        println!("  ratchet: skipped (CF_CHURN_NO_RATCHET)");
        return;
    }
    let tolerance: f64 = std::env::var("CF_CHURN_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let path = baseline_path();
    match std::fs::read_to_string(&path) {
        Ok(base) => {
            let violations = churn::ratchet(&report, &base, tolerance);
            if violations.is_empty() {
                println!(
                    "  ratchet: green against {} (time tolerance {tolerance:.2}x, memory hard)",
                    path.display()
                );
            } else {
                eprintln!("churn ratchet FAILED against {}:", path.display());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            // A missing baseline is not a silent pass in CI: the committed
            // file ships with the repo, so failing loudly here catches a
            // deleted/renamed baseline.
            eprintln!("churn ratchet: baseline {} unreadable: {e}", path.display());
            std::process::exit(1);
        }
    }
}
