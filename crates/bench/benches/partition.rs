//! Split-brain partition: run the same workload under `ReadMode::Any`
//! and `ReadMode::Quorum` across a partition/isolate/heal schedule;
//! measure per-window goodput and stale-read rate for both. Emits
//! `partition.json`.

use cf_bench::experiments::partition;

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        partition::PartitionParams::quick()
    } else {
        partition::PartitionParams::full()
    };
    partition::run(&params);
}
