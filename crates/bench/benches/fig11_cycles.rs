//! Figure 11: per-request cycle breakdown on the CDN trace.

fn main() {
    let (objects, requests) = if cf_bench::quick_mode() {
        (1_000, 600)
    } else {
        (2_500, 3_000)
    };
    cf_bench::experiments::fig11::run(objects, requests);
}
