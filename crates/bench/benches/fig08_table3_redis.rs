//! Figure 8 + Table 3: the Redis integration.

fn main() {
    let (keys, requests) = if cf_bench::quick_mode() {
        (10_000, 500)
    } else {
        (60_000, 3_000)
    };
    cf_bench::experiments::fig08::run(
        keys,
        cf_bench::scaled_duration(10_000_000),
        requests,
        59_000,
    );
}
