//! Microbenchmarks of the hot-path operations: hybrid pointer construction,
//! header writing, wire-format round trips, cache-simulator accesses, and
//! workload generators. These measure the *real* (host) cost of the library
//! code itself, complementing the virtual-time experiments.
//!
//! Hand-rolled timing harness (median of per-batch averages) instead of
//! criterion, so the workspace builds with no external dependencies.

use std::hint::black_box;
use std::time::Instant;

use cf_sim::{CacheSim, Histogram, MachineProfile, Sim};
use cf_workloads::Zipf;
use cornflakes_core::msgs::GetM;
use cornflakes_core::obj::{serialize_to_vec, write_full_header};
use cornflakes_core::{CFBytes, CornflakesObj, SerCtx, SerializationConfig};

/// Runs `op` in batches and prints the median per-iteration latency.
fn bench_function<R>(name: &str, mut op: impl FnMut() -> R) {
    const BATCHES: usize = 30;
    const ITERS_PER_BATCH: usize = 2_000;
    // Warm up caches, branch predictors, and lazy init.
    for _ in 0..ITERS_PER_BATCH {
        black_box(op());
    }
    let mut per_iter_ns: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..ITERS_PER_BATCH {
                black_box(op());
            }
            t0.elapsed().as_nanos() as f64 / ITERS_PER_BATCH as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[BATCHES / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[BATCHES - 1];
    println!("{name:<36} median {median:>9.1} ns/iter   (min {min:.1}, max {max:.1})");
}

fn ctx() -> SerCtx {
    SerCtx::new(
        Sim::new(MachineProfile::cloudlab_c6525()),
        SerializationConfig::hybrid(),
    )
}

fn bench_cfbytes() {
    let ctx = ctx();
    let pinned = ctx.pool.alloc(2048).expect("pool");
    let heap = vec![7u8; 256];
    bench_function("cfbytes_new_zero_copy_2048", || {
        CFBytes::new(&ctx, black_box(pinned.as_slice()))
    });
    bench_function("cfbytes_new_copy_256", || {
        CFBytes::new(&ctx, black_box(&heap))
    });
}

fn bench_header_write() {
    let ctx = ctx();
    let pinned = ctx.pool.alloc(1024).expect("pool");
    let mut m = GetM::new();
    m.id = Some(9);
    for _ in 0..4 {
        m.keys.append(CFBytes::new(&ctx, b"a-sixteen-b-key!"));
        m.vals.append(CFBytes::new(&ctx, pinned.as_slice()));
    }
    let hb = m.header_bytes();
    let mut out = vec![0u8; hb];
    bench_function("write_full_header_4keys_4vals", || {
        out.iter_mut().for_each(|x| *x = 0);
        write_full_header(black_box(&m), &mut out)
    });
}

fn bench_roundtrip() {
    let tx = ctx();
    let rx = ctx();
    let pinned = tx.pool.alloc(2048).expect("pool");
    let mut m = GetM::new();
    m.vals.append(CFBytes::new(&tx, pinned.as_slice()));
    m.vals.append(CFBytes::new(&tx, b"small"));
    let wire = serialize_to_vec(&m);
    let pkt = rx.pool.alloc_from(&wire).expect("pool");
    bench_function("deserialize_getm_2vals", || {
        GetM::deserialize(&rx, black_box(&pkt)).expect("ok")
    });
}

fn bench_cache_sim() {
    let mut cache = CacheSim::new(16 << 20, 16);
    let mut addr = 0u64;
    bench_function("cache_access_2048B", || {
        addr = addr.wrapping_add(4096) & 0xFFF_FFFF;
        cache.access(black_box(addr), 2048)
    });
}

fn bench_workloads() {
    let mut zipf = Zipf::new(1_000_000, 0.99, 42);
    bench_function("zipf_sample", || zipf.next());
    let mut h = Histogram::new();
    let mut v = 1u64;
    bench_function("histogram_record", || {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record(black_box(v % 1_000_000));
    });
}

fn main() {
    bench_cfbytes();
    bench_header_write();
    bench_roundtrip();
    bench_cache_sim();
    bench_workloads();
}
