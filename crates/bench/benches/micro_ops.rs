//! Criterion microbenchmarks of the hot-path operations: hybrid pointer
//! construction, header writing, wire-format round trips, cache-simulator
//! accesses, and workload generators. These measure the *real* (host) cost
//! of the library code itself, complementing the virtual-time experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cf_sim::{CacheSim, Histogram, MachineProfile, Sim};
use cf_workloads::Zipf;
use cornflakes_core::msgs::GetM;
use cornflakes_core::obj::{serialize_to_vec, write_full_header};
use cornflakes_core::{CFBytes, CornflakesObj, SerCtx, SerializationConfig};

fn ctx() -> SerCtx {
    SerCtx::new(
        Sim::new(MachineProfile::cloudlab_c6525()),
        SerializationConfig::hybrid(),
    )
}

fn bench_cfbytes(c: &mut Criterion) {
    let ctx = ctx();
    let pinned = ctx.pool.alloc(2048).expect("pool");
    let heap = vec![7u8; 256];
    c.bench_function("cfbytes_new_zero_copy_2048", |b| {
        b.iter(|| black_box(CFBytes::new(&ctx, black_box(pinned.as_slice()))))
    });
    c.bench_function("cfbytes_new_copy_256", |b| {
        b.iter(|| black_box(CFBytes::new(&ctx, black_box(&heap))))
    });
}

fn bench_header_write(c: &mut Criterion) {
    let ctx = ctx();
    let pinned = ctx.pool.alloc(1024).expect("pool");
    let mut m = GetM::new();
    m.id = Some(9);
    for _ in 0..4 {
        m.keys.append(CFBytes::new(&ctx, b"a-sixteen-b-key!"));
        m.vals.append(CFBytes::new(&ctx, pinned.as_slice()));
    }
    let hb = m.header_bytes();
    let mut out = vec![0u8; hb];
    c.bench_function("write_full_header_4keys_4vals", |b| {
        b.iter(|| {
            out.iter_mut().for_each(|x| *x = 0);
            black_box(write_full_header(black_box(&m), &mut out))
        })
    });
}

fn bench_roundtrip(c: &mut Criterion) {
    let tx = ctx();
    let rx = ctx();
    let pinned = tx.pool.alloc(2048).expect("pool");
    let mut m = GetM::new();
    m.vals.append(CFBytes::new(&tx, pinned.as_slice()));
    m.vals.append(CFBytes::new(&tx, b"small"));
    let wire = serialize_to_vec(&m);
    let pkt = rx.pool.alloc_from(&wire).expect("pool");
    c.bench_function("deserialize_getm_2vals", |b| {
        b.iter(|| black_box(GetM::deserialize(&rx, black_box(&pkt)).expect("ok")))
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    let mut cache = CacheSim::new(16 << 20, 16);
    let mut addr = 0u64;
    c.bench_function("cache_access_2048B", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(4096) & 0xFFF_FFFF;
            black_box(cache.access(black_box(addr), 2048))
        })
    });
}

fn bench_workloads(c: &mut Criterion) {
    let mut zipf = Zipf::new(1_000_000, 0.99, 42);
    c.bench_function("zipf_sample", |b| b.iter(|| black_box(zipf.next())));
    let mut h = Histogram::new();
    let mut v = 1u64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v % 1_000_000));
        })
    });
}

criterion_group!(
    benches,
    bench_cfbytes,
    bench_header_write,
    bench_roundtrip,
    bench_cache_sim,
    bench_workloads
);
criterion_main!(benches);
