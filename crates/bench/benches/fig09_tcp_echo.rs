//! Figure 9: echo latency over the TCP stack.

fn main() {
    let rounds = if cf_bench::quick_mode() { 500 } else { 5_000 };
    cf_bench::experiments::fig09::run(rounds);
}
