//! Table 1 + Figure 6: the Google field-size distribution workload.

fn main() {
    let (keys, requests) = if cf_bench::quick_mode() {
        (6_000, 500)
    } else {
        (30_000, 3_000)
    };
    cf_bench::experiments::fig06::run_table1(keys, requests);
    cf_bench::experiments::fig06::run_fig6_curves(keys, cf_bench::scaled_duration(10_000_000));
}
