//! Figure 5: the copy-vs-scatter-gather heatmap and its 512 B crossover.

fn main() {
    let requests = if cf_bench::quick_mode() { 400 } else { 1_500 };
    cf_bench::experiments::fig05::run(30_000, requests);
}
