//! Figure 10: threshold generality across Mellanox and Intel NICs.

fn main() {
    let requests = if cf_bench::quick_mode() { 400 } else { 1_500 };
    cf_bench::experiments::fig10::run(30_000, requests);
}
