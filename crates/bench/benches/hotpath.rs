//! Hot-path microbenchmark: real-time ns/op and allocs/op per SerKind for
//! steady-state GET / batched-GET / PUT round trips, plus the CI ratchet
//! gate against the committed `BENCH_hotpath.json`. Emits `hotpath.json`.
//!
//! Env knobs:
//! - `CF_QUICK` — CI-sized preset.
//! - `CF_HOTPATH_BASELINE` — baseline path (default `BENCH_hotpath.json`,
//!   falling back to the workspace root when invoked from elsewhere).
//! - `CF_HOTPATH_TOLERANCE` — ns/op regression multiplier (default 2.0).
//! - `CF_HOTPATH_NO_RATCHET` — measure and emit only (used when
//!   regenerating the baseline itself).

use cf_bench::experiments::hotpath;
use cf_telemetry::CountingAlloc;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn baseline_path() -> std::path::PathBuf {
    if let Some(p) = std::env::var_os("CF_HOTPATH_BASELINE") {
        return p.into();
    }
    let local = std::path::PathBuf::from("BENCH_hotpath.json");
    if local.exists() {
        return local;
    }
    // Invoked from outside the workspace root: resolve relative to this
    // crate's manifest.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
}

fn main() {
    let params = if std::env::var("CF_QUICK").is_ok() {
        hotpath::HotpathParams::quick()
    } else {
        hotpath::HotpathParams::full()
    };
    let report = hotpath::run(&params);
    assert!(
        report.alloc_counted,
        "bench binary must install the counting allocator"
    );

    if std::env::var_os("CF_HOTPATH_NO_RATCHET").is_some() {
        println!("  ratchet: skipped (CF_HOTPATH_NO_RATCHET)");
        return;
    }
    let tolerance: f64 = std::env::var("CF_HOTPATH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let path = baseline_path();
    match std::fs::read_to_string(&path) {
        Ok(base) => {
            let violations = hotpath::ratchet(&report, &base, tolerance);
            if violations.is_empty() {
                println!(
                    "  ratchet: green against {} (ns tolerance {tolerance:.2}x, allocs hard floor)",
                    path.display()
                );
            } else {
                eprintln!("hotpath ratchet FAILED against {}:", path.display());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            // A missing baseline is not a silent pass in CI: the committed
            // file ships with the repo, so failing loudly here catches a
            // deleted/renamed baseline.
            eprintln!(
                "hotpath ratchet: baseline {} unreadable: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}
