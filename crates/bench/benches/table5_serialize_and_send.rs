//! Table 5: the combined serialize-and-send ablation.

fn main() {
    let quick = cf_bench::quick_mode();
    cf_bench::experiments::table5::run(
        if quick { 5_000 } else { 20_000 },
        if quick { 400 } else { 1_500 },
        cf_bench::scaled_duration(10_000_000),
    );
}
