//! Aligned text-table output for experiment results.

/// Prints a titled, aligned table.
///
/// # Examples
///
/// ```
/// cf_bench::tables::print_table(
///     "Table 1",
///     &["System", "1 val"],
///     &[vec!["Cornflakes".into(), "844.7".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", s.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percent difference with sign.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Prints the paper-vs-measured comparison line that each experiment ends
/// with.
pub fn print_expectation(label: &str, paper: &str, measured: &str) {
    println!("  [paper] {label}: {paper}");
    println!("  [measured] {label}: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(15.44), "15.4");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(15.4), "+15.4%");
        assert_eq!(pct(-3.2), "-3.2%");
    }

    #[test]
    fn print_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["x".into(), "longer".into()], vec!["yy".into()]],
        );
        print_expectation("thing", "1", "2");
    }
}
