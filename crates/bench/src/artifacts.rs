//! Per-experiment metrics artifacts.
//!
//! Experiments that install telemetry write their end-of-run metrics
//! snapshot (counters, gauges, histograms, serializer decisions, span
//! summary) as one JSON file per experiment, so runs leave a
//! machine-readable record next to the printed tables.

use std::fs;
use std::io;
use std::path::PathBuf;

use cf_telemetry::Telemetry;

/// Directory artifacts are written to: `$CF_ARTIFACT_DIR` when set,
/// `target/cf-artifacts` otherwise.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("CF_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/cf-artifacts"))
}

/// Writes `experiment`'s metrics snapshot to
/// `<artifact_dir>/<experiment>-metrics.json`, creating the directory if
/// needed. Returns the path written.
pub fn write_metrics_artifact(experiment: &str, tele: &Telemetry) -> io::Result<PathBuf> {
    let dir = artifact_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{experiment}-metrics.json"));
    fs::write(&path, tele.snapshot_json())?;
    Ok(path)
}

/// Writes an experiment-specific JSON body to `<artifact_dir>/<name>.json`
/// (experiments with structured results beyond the metrics snapshot, e.g.
/// the scaling sweep). Returns the path written.
pub fn write_json_artifact(name: &str, json: &str) -> io::Result<PathBuf> {
    let dir = artifact_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json)?;
    Ok(path)
}

/// Writes a Chrome Trace Event JSON file (`chrome://tracing` /
/// `ui.perfetto.dev` loadable) for `experiment`'s recorded spans.
pub fn write_trace_artifact(experiment: &str, tele: &Telemetry) -> io::Result<PathBuf> {
    let dir = artifact_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{experiment}-trace.json"));
    fs::write(&path, tele.chrome_trace_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_sim::{MachineProfile, Sim};

    #[test]
    fn artifacts_are_valid_json() {
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let tele = Telemetry::attach(&sim);
        tele.counter("test.counter").add(3);
        let path = write_metrics_artifact("unit-test", &tele).expect("artifact written");
        let text = fs::read_to_string(&path).expect("readable");
        cf_telemetry::json::validate(&text).expect("valid JSON");
        assert!(text.contains("test.counter"));
        let _ = fs::remove_file(&path);
    }
}
