//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation (§2.2, §5, §6).
//!
//! Each `cargo bench` target under `benches/` is a thin wrapper around one
//! module in [`experiments`]; the logic lives here so integration tests can
//! run scaled-down versions of every experiment.
//!
//! Conventions:
//!
//! - Experiments print the same rows/series the paper reports, as aligned
//!   text tables, plus a one-line comparison against the paper's headline
//!   number.
//! - All randomness is seeded; output is deterministic.
//! - Setting `CF_QUICK=1` shrinks durations ~10× for smoke runs; the
//!   recorded numbers in `EXPERIMENTS.md` come from full runs.

pub mod artifacts;
pub mod experiments;
pub mod harness;
pub mod tables;

/// True when `CF_QUICK=1`: run shortened sweeps.
pub fn quick_mode() -> bool {
    std::env::var("CF_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Scales a measurement-window duration (ns) down in quick mode.
pub fn scaled_duration(full_ns: u64) -> u64 {
    if quick_mode() {
        full_ns / 10
    } else {
        full_ns
    }
}
