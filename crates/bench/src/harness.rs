//! Shared experiment machinery: server/client pairs, store preloading from
//! the paper's workloads, and sweep helpers.

use cf_mem::PoolConfig;
use cf_sim::queueing::{sweep, LoadPoint, OpenLoopSim, SweepResult};
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::Telemetry;
use cornflakes_core::SerializationConfig;

use cf_kv::client::{client_server_pair, KvClient};
use cf_kv::server::{KvServer, SerKind};
use cf_workloads::{key_string, CdnTrace, GoogleSizeDist, TwitterTrace};

/// A benchmark fixture: one simulated server machine plus a client on its
/// own machine, connected by a wire.
pub struct KvBench {
    /// The server machine's simulation (clock = service time source).
    pub server_sim: Sim,
    /// The load-generating client.
    pub client: KvClient,
    /// The server under test.
    pub server: KvServer,
}

/// A pool sized for the large-working-set experiments.
pub fn large_pool() -> PoolConfig {
    PoolConfig {
        min_class: 64,
        max_class: 16 * 1024,
        slots_per_region: 4096,
        max_regions_per_class: 1024,
    }
}

impl KvBench {
    /// Creates a fixture on the main-testbed profile.
    pub fn new(kind: SerKind, config: SerializationConfig) -> Self {
        Self::with_profile(MachineProfile::cloudlab_c6525(), kind, config)
    }

    /// Creates a fixture on an explicit machine profile.
    pub fn with_profile(
        profile: MachineProfile,
        kind: SerKind,
        config: SerializationConfig,
    ) -> Self {
        let server_sim = Sim::new(profile);
        let (client, server) = client_server_pair(server_sim.clone(), kind, config, large_pool());
        KvBench {
            server_sim,
            client,
            server,
        }
    }

    /// Attaches a telemetry handle to the server machine (charge-observer
    /// into span tracing) and wires the server's datapath, NIC, memory, and
    /// per-[`SerKind`] counters into it. Returns the handle for
    /// snapshotting and artifact export.
    pub fn install_telemetry(&mut self) -> Telemetry {
        let tele = Telemetry::attach(&self.server_sim);
        self.server.set_telemetry(&tele);
        tele
    }

    /// An open-loop load generator over the server's clock.
    pub fn openloop(&self, duration_ns: u64, warmup: u64) -> OpenLoopSim {
        OpenLoopSim {
            clock: self.server_sim.clock(),
            seed: 0xBEEF,
            one_way_wire_ns: 5_000,
            duration_ns,
            warmup_requests: warmup,
        }
    }

    /// Preloads `num_keys` keys whose values are `segment_sizes` buffers
    /// each (the YCSB / measurement-study shape).
    pub fn preload_constant(&mut self, num_keys: u64, segment_sizes: &[usize]) {
        for id in 0..num_keys {
            self.server
                .store
                .preload(
                    self.server.stack.ctx(),
                    key_string(id).as_bytes(),
                    segment_sizes,
                )
                .expect("grow the pool config for this experiment");
        }
    }

    /// Preloads the synthetic Twitter trace's keys (sizes per
    /// [`TwitterTrace::value_size`], MTU-split).
    pub fn preload_twitter(&mut self, num_keys: u64) {
        for id in 0..num_keys {
            let size = TwitterTrace::value_size(id);
            self.server
                .store
                .preload(self.server.stack.ctx(), key_string(id).as_bytes(), &[size])
                .expect("pool too small for Twitter preload");
        }
    }

    /// Preloads Google-distribution objects: linked lists of 1..=max_fields
    /// fields with sizes from the published distribution.
    pub fn preload_google(&mut self, num_keys: u64, max_fields: usize) {
        for id in 0..num_keys {
            let sizes = GoogleSizeDist::object_for_key(id, max_fields);
            self.server
                .store
                .preload(self.server.stack.ctx(), key_string(id).as_bytes(), &sizes)
                .expect("pool too small for Google preload");
        }
    }

    /// Preloads CDN objects as vectors of jumbo-frame segments.
    pub fn preload_cdn(&mut self, num_objects: u64) {
        for id in 0..num_objects {
            let sizes: Vec<usize> = (0..CdnTrace::num_segments(id))
                .map(|s| CdnTrace::segment_size(id, s))
                .collect();
            self.server
                .store
                .preload(self.server.stack.ctx(), key_string(id).as_bytes(), &sizes)
                .expect("pool too small for CDN preload");
        }
    }

    /// Runs one offered load where each request is produced by
    /// `send_request` and the response payload size is recorded.
    pub fn run_load(
        &mut self,
        sim: &OpenLoopSim,
        offered_rps: f64,
        mut send_request: impl FnMut(&mut KvClient, u64),
    ) -> LoadPoint {
        let client = &mut self.client;
        let server = &mut self.server;
        sim.run(offered_rps, move |seq| {
            send_request(client, seq);
            server.poll();
            client
                .recv_response()
                .map(|r| r.payload_bytes as u64)
                .unwrap_or(0)
        })
    }

    /// Runs the server at closed-loop saturation for `n` requests.
    pub fn run_saturated(
        &mut self,
        sim: &OpenLoopSim,
        n: u64,
        mut send_request: impl FnMut(&mut KvClient, u64),
    ) -> LoadPoint {
        let client = &mut self.client;
        let server = &mut self.server;
        sim.run_saturated(n, move |seq| {
            send_request(client, seq);
            server.poll();
            client
                .recv_response()
                .map(|r| r.payload_bytes as u64)
                .unwrap_or(0)
        })
    }

    /// Sweeps offered loads, resetting clock/cache/attribution between
    /// points (store contents persist; warmup re-warms the cache).
    pub fn sweep_loads(
        &mut self,
        sim: &OpenLoopSim,
        loads: &[f64],
        mut send_request: impl FnMut(&mut KvClient, u64),
    ) -> SweepResult {
        let server_sim = self.server_sim.clone();
        sweep(loads, |load| {
            server_sim.reset();
            self.run_load(sim, load, &mut send_request)
        })
    }
}

/// Measures server capacity (requests/s and payload Gbps) at closed-loop
/// saturation — the paper's "highest achieved throughput across all offered
/// loads".
pub fn capacity(
    bench: &mut KvBench,
    requests: u64,
    warmup: u64,
    send_request: impl FnMut(&mut KvClient, u64),
) -> LoadPoint {
    bench.server_sim.reset();
    let sim = OpenLoopSim {
        clock: bench.server_sim.clock(),
        seed: 0xFACE,
        one_way_wire_ns: 5_000,
        duration_ns: u64::MAX / 4,
        warmup_requests: warmup,
    };
    bench.run_saturated(&sim, requests, send_request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_serves_constant_workload() {
        let mut b = KvBench::new(SerKind::Cornflakes, SerializationConfig::hybrid());
        b.preload_constant(16, &[1024]);
        let point = capacity(&mut b, 200, 20, |client, seq| {
            let key = key_string(seq % 16);
            client.send_get(&[key.as_bytes()]);
        });
        assert_eq!(point.completed, 200);
        assert!(point.achieved_rps > 0.0);
        assert!(point.payload_bytes > 200 * 1024);
    }

    #[test]
    fn sweep_respects_capacity() {
        let mut b = KvBench::new(SerKind::Protobuf, SerializationConfig::hybrid());
        b.preload_constant(8, &[512]);
        let cap = capacity(&mut b, 300, 30, |client, seq| {
            let key = key_string(seq % 8);
            client.send_get(&[key.as_bytes()]);
        })
        .achieved_rps;
        let ol = b.openloop(2_000_000, 50);
        let result = b.sweep_loads(&ol, &[cap * 0.5, cap * 3.0], |client, seq| {
            let key = key_string(seq % 8);
            client.send_get(&[key.as_bytes()]);
        });
        assert!(result.points[0].is_stable());
        assert!(!result.points[1].is_stable());
    }
}
