//! Connection-churn sweep: accept goodput, request-RTT tail, and the
//! flow-table memory ceiling as total churned flows scale 1k → 64k. The
//! enforcement artifact behind the CI churn ratchet (`BENCH_churn.json`).
//!
//! Each sweep point opens `concurrent` TCP flows against a
//! [`TcpKvServer`] behind a bounded [`TcpListener`], then churns the
//! remainder of `flows_total` through the table by closing and reopening
//! connections in fixed-size batches. Every flow runs one full lifecycle:
//! handshake, one GET of a preloaded hot key, an ACK releasing the
//! reply's retransmission records, and an orderly FIN. The driver speaks
//! raw frames (its own seq/ack state per flow) so a 64k-flow point does
//! not pay for 64k client stacks — the system under test is the
//! listener's slab, demux map, and timer wheel, not the client.
//!
//! Four measurements per point:
//!
//! - **accepts/sec** — completed handshakes per *virtual* second over the
//!   ramp + churn phases. Virtual time comes from the simulator's cost
//!   model, so the number is deterministic.
//! - **p99 RTT (ns)** — 99th-percentile GET round trip (request injected
//!   → reply frame drained), in virtual ns, sampled once per flow.
//! - **mem ceiling (bytes)** — max over per-batch samples of
//!   [`TcpListener::resident_bytes`] plus the pinned pool's registered
//!   bytes: the whole transport-side footprint. Deterministic, so the
//!   ratchet can hold it to a hard ceiling.
//! - **reaped_to_zero** — after the final drain, the table is empty and
//!   the pool is back to its pre-traffic occupancy (no leaked buffers).
//!
//! Emits `churn.json` (schema in EXPERIMENTS.md). The committed
//! `BENCH_churn.json` is the ratchet baseline: goodput may not fall,
//! tails and memory may not grow (`CF_CHURN_TOLERANCE` on the
//! time-derived metrics, a fixed slack on the memory ceiling).

use cf_kv::msg_type;
use cf_kv::msgs::GetMsg;
use cf_kv::tcp_server::{sub_header, TcpKvServer};
use cf_net::tcp::{FLAG_ACK, FLAG_FIN, FLAG_SYN, OFF_ACK, OFF_DST, OFF_FLAGS, OFF_SEQ, OFF_SRC};
use cf_net::{FlowConfig, TcpListener};
use cf_nic::{link, Port, PortHub};
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::obj::write_full_header;
use cornflakes_core::{CornflakesObj, SerCtx, SerializationConfig};

use crate::artifacts::write_json_artifact;
use crate::tables::print_table;

const SERVER_PORT: u16 = 9000;
const BASE_PORT: u16 = 10_000;
const FRAME_HEADER: usize = 48;

/// One sweep point: total flows churned through a table of `concurrent`
/// slots.
#[derive(Clone, Copy, Debug)]
pub struct ChurnPoint {
    /// Total connection lifecycles driven.
    pub flows_total: usize,
    /// Flow-table capacity; flows held open at steady state.
    pub concurrent: usize,
}

/// Harness knobs; [`ChurnParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Sweep points, each a full independent rig.
    pub points: Vec<ChurnPoint>,
    /// Flows opened/closed per driver step. Must divide every point's
    /// `concurrent` and `flows_total`.
    pub batch: usize,
    /// Size of the preloaded value every flow GETs.
    pub value_bytes: usize,
}

impl ChurnParams {
    /// Full sweep: 1k → 64k total flows, table capacity up to 32k.
    pub fn full() -> Self {
        ChurnParams {
            points: vec![
                ChurnPoint {
                    flows_total: 1_024,
                    concurrent: 1_024,
                },
                ChurnPoint {
                    flows_total: 4_096,
                    concurrent: 4_096,
                },
                ChurnPoint {
                    flows_total: 16_384,
                    concurrent: 16_384,
                },
                ChurnPoint {
                    flows_total: 65_536,
                    concurrent: 32_768,
                },
            ],
            batch: 256,
            value_bytes: 64,
        }
    }

    /// CI smoke preset: the first two points, same batch as the full
    /// sweep so every measurement stays directly comparable to the
    /// committed baseline (the ratchet checks the points a run covers).
    pub fn quick() -> Self {
        ChurnParams {
            points: vec![
                ChurnPoint {
                    flows_total: 1_024,
                    concurrent: 1_024,
                },
                ChurnPoint {
                    flows_total: 4_096,
                    concurrent: 4_096,
                },
            ],
            ..ChurnParams::full()
        }
    }
}

/// One sweep point's measurements.
#[derive(Clone, Copy, Debug)]
pub struct PointReport {
    /// Total connection lifecycles driven.
    pub flows_total: usize,
    /// Flow-table capacity.
    pub concurrent: usize,
    /// Completed handshakes per virtual second (ramp + churn phases).
    pub accepts_per_sec: f64,
    /// 99th-percentile GET round trip in virtual ns.
    pub p99_rtt_ns: f64,
    /// Max transport-side resident bytes (slab + buffers + wheel + demux
    /// map + registered pool regions) observed across the run.
    pub mem_ceiling_bytes: u64,
    /// Table drained to zero flows and the pool returned to its
    /// pre-traffic occupancy.
    pub reaped_to_zero: bool,
}

/// The full report, as emitted to `churn.json`.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Flows per driver step.
    pub batch: usize,
    /// Preloaded value size.
    pub value_bytes: usize,
    /// One entry per sweep point.
    pub points: Vec<PointReport>,
}

fn raw_frame(src: u16, seq: u32, ack: u32, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![0u8; FRAME_HEADER + payload.len()];
    f[OFF_SRC..OFF_SRC + 2].copy_from_slice(&src.to_be_bytes());
    f[OFF_DST..OFF_DST + 2].copy_from_slice(&SERVER_PORT.to_be_bytes());
    f[OFF_SEQ..OFF_SEQ + 4].copy_from_slice(&seq.to_le_bytes());
    f[OFF_ACK..OFF_ACK + 4].copy_from_slice(&ack.to_le_bytes());
    f[OFF_FLAGS] = flags;
    f[FRAME_HEADER..].copy_from_slice(payload);
    f
}

/// Contiguous Cornflakes encode of a single-key GET — the same byte order
/// `TcpKvClient::get` sends, minus the sub-header.
fn encode_get(ctx: &SerCtx, key: &[u8]) -> Vec<u8> {
    let mut req = GetMsg::new();
    req.add_keys(ctx, key);
    let mut hdr = vec![0u8; req.header_bytes()];
    write_full_header(&req, &mut hdr);
    let mut enc = hdr;
    {
        let enc = &mut enc;
        req.for_each_copy_entry(&mut |b: &[u8]| enc.extend_from_slice(b));
        req.for_each_zero_copy_entry(&mut |rc| enc.extend_from_slice(rc.as_slice()));
    }
    ctx.end_request();
    enc
}

/// The raw-frame churn driver: per-slot seq/ack state for up to
/// `concurrent` live flows, reusing one attached hub endpoint (and port)
/// per slot across churn generations.
struct Driver {
    server: TcpKvServer,
    hub: PortHub,
    eps: Vec<Port>,
    /// Stream bytes of each open slot's reply (needed to ack and FIN).
    reply_len: Vec<u32>,
    /// Stream bytes a request occupies (fixed: one GET per flow).
    req_stream_len: u32,
    /// Request message template; bytes 4..8 take the per-flow req id.
    msg_template: Vec<u8>,
    next_req_id: u32,
}

impl Driver {
    fn port(slot: usize) -> u16 {
        BASE_PORT + slot as u16
    }

    fn pump_poll(&mut self) {
        self.hub.pump();
        self.server.poll().expect("server poll");
        self.hub.pump();
    }

    /// Drains a slot's endpoint, recycling every frame buffer; returns
    /// `(stream_len, req_id)` of the data frame seen, if any.
    fn drain(&self, slot: usize) -> Option<(u32, u32)> {
        let ep = &self.eps[slot];
        let mut data = None;
        while let Some(f) = ep.recv() {
            let payload = f.data.len() - FRAME_HEADER;
            if payload > 0 {
                let p = &f.data[FRAME_HEADER..];
                let req_id = u32::from_le_bytes(p[8..12].try_into().expect("4 bytes"));
                data = Some((payload as u32, req_id));
            }
            ep.recycle_rx_data(f.data);
        }
        data
    }

    /// Opens every slot in `slots`: handshake, one GET, ack the reply.
    /// Returns the batch's request RTT in virtual ns.
    fn open_batch(&mut self, slots: std::ops::Range<usize>, sim: &Sim) -> u64 {
        for s in slots.clone() {
            self.hub
                .inject(raw_frame(Self::port(s), 1, 0, FLAG_SYN, &[]));
        }
        self.pump_poll();
        for s in slots.clone() {
            self.drain(s); // SYN|ACK
        }

        let t0 = sim.clock().now();
        let mut expect = Vec::with_capacity(slots.len());
        for s in slots.clone() {
            let req_id = self.next_req_id;
            self.next_req_id = self.next_req_id.wrapping_add(1);
            self.msg_template[4..8].copy_from_slice(&req_id.to_le_bytes());
            let mut stream = Vec::with_capacity(4 + self.msg_template.len());
            stream.extend_from_slice(&(self.msg_template.len() as u32).to_le_bytes());
            stream.extend_from_slice(&self.msg_template);
            self.hub
                .inject(raw_frame(Self::port(s), 2, 2, FLAG_ACK, &stream));
            expect.push((s, req_id));
        }
        self.pump_poll();
        let rtt = sim.clock().now() - t0;
        for &(s, req_id) in &expect {
            let (len, got_id) = self
                .drain(s)
                .unwrap_or_else(|| panic!("slot {s}: GET reply never arrived"));
            assert_eq!(got_id, req_id, "slot {s}: reply matches its request");
            self.reply_len[s] = len;
        }

        // Ack the reply so the flow parks with an empty retransmission
        // queue — an open-but-quiet connection must pin no pool buffers.
        for s in slots.clone() {
            self.hub.inject(raw_frame(
                Self::port(s),
                2 + self.req_stream_len,
                2 + self.reply_len[s],
                FLAG_ACK,
                &[],
            ));
        }
        self.pump_poll();
        rtt
    }

    /// Orderly FIN for every slot in `slots`; the server's FIN|ACK frees
    /// each slot synchronously.
    fn close_batch(&mut self, slots: std::ops::Range<usize>) {
        for s in slots.clone() {
            self.hub.inject(raw_frame(
                Self::port(s),
                2 + self.req_stream_len,
                2 + self.reply_len[s],
                FLAG_ACK | FLAG_FIN,
                &[],
            ));
        }
        self.pump_poll();
        for s in slots {
            self.drain(s); // FIN|ACK
        }
    }

    fn mem_resident(&self) -> u64 {
        (self.server.listener.resident_bytes() + self.server.listener.ctx().pool.registered_bytes())
            as u64
    }
}

fn run_point(point: ChurnPoint, params: &ChurnParams) -> PointReport {
    assert!(
        point.concurrent.is_multiple_of(params.batch)
            && point.flows_total.is_multiple_of(params.batch),
        "batch {} must divide concurrent {} and flows_total {}",
        params.batch,
        point.concurrent,
        point.flows_total
    );
    assert!(point.flows_total >= point.concurrent);
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (server_wire, trunk) = link();
    let mut hub = PortHub::new(trunk);
    let listener = TcpListener::new(
        sim.clone(),
        server_wire,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        FlowConfig {
            capacity: point.concurrent,
            syn_backlog: params.batch,
            // Flows park open across the whole run; reaping is the drain
            // phase's job, not the sweep's. A wide wheel tick keeps idle
            // re-arms off the hot path.
            idle_timeout_ns: 1_000_000_000,
            wheel_slots: 256,
            wheel_tick_ns: 1_000_000,
            ..FlowConfig::default()
        },
    );
    let mut server = TcpKvServer::new(listener);
    let key = b"churn-hot-key";
    let value = vec![0xC5u8; params.value_bytes];
    server
        .store
        .put(server.listener.ctx(), key, &value, 8192)
        .expect("preload");
    let enc = encode_get(server.listener.ctx(), key);
    let mut msg_template = sub_header(msg_type::GET, 0, 0).to_vec();
    msg_template.extend_from_slice(&enc);
    let req_stream_len = (4 + msg_template.len()) as u32;
    let pool_baseline = server.listener.ctx().pool.live_slots();

    let eps: Vec<Port> = (0..point.concurrent)
        .map(|s| hub.attach(Driver::port(s)))
        .collect();
    let mut d = Driver {
        server,
        hub,
        eps,
        reply_len: vec![0; point.concurrent],
        req_stream_len,
        msg_template,
        next_req_id: 1,
    };

    let mut rtts: Vec<u64> = Vec::with_capacity(point.flows_total);
    let mut mem_ceiling = d.mem_resident();
    let sample = |d: &Driver, ceiling: &mut u64| {
        *ceiling = (*ceiling).max(d.mem_resident());
    };
    let t_start = sim.clock().now();

    // Ramp: fill the table to capacity.
    for start in (0..point.concurrent).step_by(params.batch) {
        let rtt = d.open_batch(start..start + params.batch, &sim);
        rtts.extend(std::iter::repeat_n(rtt, params.batch));
        sample(&d, &mut mem_ceiling);
    }

    // Churn: recycle slots through close → reopen at full occupancy.
    let mut pos = 0usize;
    for _ in 0..(point.flows_total - point.concurrent) / params.batch {
        let slots = pos..pos + params.batch;
        d.close_batch(slots.clone());
        let rtt = d.open_batch(slots, &sim);
        rtts.extend(std::iter::repeat_n(rtt, params.batch));
        pos = (pos + params.batch) % point.concurrent;
        sample(&d, &mut mem_ceiling);
        assert!(
            d.server.listener.active_flows() <= point.concurrent,
            "flow table exceeded its bound"
        );
    }
    let elapsed_ns = sim.clock().now() - t_start;

    let stats = d.server.listener.stats();
    assert_eq!(
        stats.accepts, point.flows_total as u64,
        "every driven handshake completed"
    );

    // Drain: hang up everything, then let the wheel settle past the idle
    // horizon — the table and the pool must return to their baselines.
    for start in (0..point.concurrent).step_by(params.batch) {
        d.close_batch(start..start + params.batch);
    }
    for _ in 0..4 {
        sim.clock().advance(1_000_000_000);
        d.server.poll().expect("server poll");
    }
    let reaped_to_zero = d.server.listener.active_flows() == 0
        && d.server.listener.ctx().pool.live_slots() == pool_baseline;

    rtts.sort_unstable();
    let p99_idx = (rtts.len() * 99).div_ceil(100).saturating_sub(1);
    PointReport {
        flows_total: point.flows_total,
        concurrent: point.concurrent,
        accepts_per_sec: point.flows_total as f64 / (elapsed_ns as f64 / 1e9),
        p99_rtt_ns: rtts[p99_idx] as f64,
        mem_ceiling_bytes: mem_ceiling,
        reaped_to_zero,
    }
}

fn report_json(r: &ChurnReport) -> String {
    let points: Vec<String> = r
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"flows_total\": {}, \"concurrent\": {}, \"accepts_per_sec\": {:.1}, \
                 \"p99_rtt_ns\": {:.1}, \"mem_ceiling_bytes\": {}, \"reaped_to_zero\": {}}}",
                p.flows_total,
                p.concurrent,
                p.accepts_per_sec,
                p.p99_rtt_ns,
                p.mem_ceiling_bytes,
                p.reaped_to_zero
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"churn\",\n  \"batch\": {},\n  \"value_bytes\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        r.batch,
        r.value_bytes,
        points.join(",\n")
    )
}

/// Runs the sweep, prints the table, writes `churn.json`.
pub fn run(params: &ChurnParams) -> ChurnReport {
    let report = ChurnReport {
        batch: params.batch,
        value_bytes: params.value_bytes,
        points: params
            .points
            .iter()
            .map(|&p| run_point(p, params))
            .collect(),
    };

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.flows_total.to_string(),
                p.concurrent.to_string(),
                format!("{:.0}", p.accepts_per_sec),
                format!("{:.0}", p.p99_rtt_ns),
                format!("{:.1}", p.mem_ceiling_bytes as f64 / 1024.0 / 1024.0),
                p.reaped_to_zero.to_string(),
            ]
        })
        .collect();
    print_table(
        "Connection churn: accept goodput, RTT tail, memory ceiling (virtual time)",
        &[
            "flows",
            "table",
            "accepts/s",
            "p99 rtt ns",
            "mem MiB",
            "reaped",
        ],
        &rows,
    );

    match write_json_artifact("churn", &report_json(&report)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => eprintln!("  artifact write failed: {e}"),
    }
    report
}

/// Fixed slack on the memory-ceiling ratchet: the driver is deterministic
/// in virtual time, but container-capacity growth policies may shift a
/// few percent across toolchain versions.
const MEM_SLACK: f64 = 1.05;

/// Compares a fresh report against the committed `BENCH_churn.json`
/// baseline. Returns every violation found (empty = ratchet holds).
///
/// - **accepts/sec may not fall** below baseline ÷ `tolerance`.
/// - **p99 RTT may not rise** above baseline × `tolerance`.
/// - **The memory ceiling is (almost) hard**: at most baseline ×
///   [`MEM_SLACK`] — both sides are virtual-time deterministic, so growth
///   means the flow table got fatter, not that the machine got slower.
/// - **`reaped_to_zero` must stay true** wherever the baseline holds it.
/// - Baseline points the run does not cover are skipped — the quick
///   preset ratchets the prefix of the sweep it drives; the full run (the
///   CI gate) covers every point. A run matching *no* baseline point is a
///   violation (preset/baseline drift).
pub fn ratchet(current: &ChurnReport, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let mut matched = 0usize;
    let baseline = match cf_telemetry::json::parse(baseline_json) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline is not valid JSON: {e}")],
    };
    let points = baseline
        .get("points")
        .and_then(|v| v.as_arr().map(<[_]>::to_vec))
        .unwrap_or_default();
    if points.is_empty() {
        violations.push("baseline has no points".to_string());
    }
    for bp in &points {
        let flows = bp
            .get("flows_total")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0) as usize;
        let conc = bp.get("concurrent").and_then(|v| v.as_f64()).unwrap_or(0.0) as usize;
        let label = format!("{flows}x{conc}");
        let Some(cp) = current
            .points
            .iter()
            .find(|p| p.flows_total == flows && p.concurrent == conc)
        else {
            continue; // not covered by this preset
        };
        matched += 1;
        let base_acc = bp
            .get("accepts_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if base_acc > 0.0 && cp.accepts_per_sec < base_acc / tolerance {
            violations.push(format!(
                "{label}: accepts/sec fell {:.0} -> {:.0} (> {tolerance:.2}x tolerance)",
                base_acc, cp.accepts_per_sec
            ));
        }
        let base_p99 = bp.get("p99_rtt_ns").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if base_p99 > 0.0 && cp.p99_rtt_ns > base_p99 * tolerance {
            violations.push(format!(
                "{label}: p99 RTT regressed {:.0} -> {:.0} ns (> {tolerance:.2}x tolerance)",
                base_p99, cp.p99_rtt_ns
            ));
        }
        let base_mem = bp
            .get("mem_ceiling_bytes")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if base_mem > 0.0 && cp.mem_ceiling_bytes as f64 > base_mem * MEM_SLACK {
            violations.push(format!(
                "{label}: memory ceiling grew {:.0} -> {} bytes (hard x{MEM_SLACK:.2} bound)",
                base_mem, cp.mem_ceiling_bytes
            ));
        }
        let base_reaped = matches!(
            bp.get("reaped_to_zero"),
            Some(cf_telemetry::json::Value::Bool(true))
        );
        if base_reaped && !cp.reaped_to_zero {
            violations.push(format!("{label}: no longer reaps/drains to zero"));
        }
    }
    if matched == 0 && !points.is_empty() {
        violations.push("no baseline point matches the run (preset/baseline drift)".to_string());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_reports_every_point_and_drains() {
        let params = ChurnParams {
            points: vec![
                ChurnPoint {
                    flows_total: 64,
                    concurrent: 32,
                },
                ChurnPoint {
                    flows_total: 128,
                    concurrent: 64,
                },
            ],
            batch: 16,
            value_bytes: 64,
        };
        let report = run(&params);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.accepts_per_sec > 0.0);
            assert!(p.p99_rtt_ns > 0.0);
            assert!(p.mem_ceiling_bytes > 0);
            assert!(
                p.reaped_to_zero,
                "{}x{} failed to drain",
                p.flows_total, p.concurrent
            );
        }
        // Bounded tables: quadrupling the churned flows at double the
        // capacity must not quadruple the ceiling.
        let small = report.points[0].mem_ceiling_bytes as f64;
        let large = report.points[1].mem_ceiling_bytes as f64;
        assert!(
            large < small * 4.0,
            "memory ceiling scales with capacity, not churn: {small} -> {large}"
        );
    }

    #[test]
    fn ratchet_flags_regressions_against_a_synthetic_baseline() {
        let good = PointReport {
            flows_total: 64,
            concurrent: 32,
            accepts_per_sec: 1000.0,
            p99_rtt_ns: 5000.0,
            mem_ceiling_bytes: 1_000_000,
            reaped_to_zero: true,
        };
        let baseline = report_json(&ChurnReport {
            batch: 16,
            value_bytes: 64,
            points: vec![good],
        });
        let pass = ChurnReport {
            batch: 16,
            value_bytes: 64,
            points: vec![good],
        };
        assert!(ratchet(&pass, &baseline, 2.0).is_empty());

        let bad = ChurnReport {
            batch: 16,
            value_bytes: 64,
            points: vec![PointReport {
                accepts_per_sec: 100.0,       // collapsed goodput
                p99_rtt_ns: 50_000.0,         // 10x tail
                mem_ceiling_bytes: 2_000_000, // fatter table
                reaped_to_zero: false,        // leak
                ..good
            }],
        };
        let violations = ratchet(&bad, &baseline, 2.0);
        assert_eq!(violations.len(), 4, "{violations:?}");
        assert!(ratchet(
            &ChurnReport {
                batch: 16,
                value_bytes: 64,
                points: vec![]
            },
            &baseline,
            2.0
        )
        .iter()
        .any(|v| v.contains("no baseline point matches")));
    }
}
