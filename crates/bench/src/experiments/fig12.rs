//! Figure 12 + Table 4: the hybrid threshold ablation (§6.5.1).
//!
//! Cornflakes with its hybrid 512-byte threshold vs "only scatter-gather"
//! (threshold 0) vs "only copy" (threshold ∞). Paper results: on the
//! Twitter trace the hybrid is 2.3–3.9 % ahead of scatter-gather-only at
//! the ~50 µs SLO (and far ahead of copy-only); on the Google workload the
//! hybrid wins by 1.4–14.0 % once responses carry more than one entry.

use cornflakes_core::SerializationConfig;

use cf_kv::server::SerKind;

use super::fig06::google_krps;
use super::fig07::sweep_twitter;
use crate::tables::{f1, pct, print_expectation, print_table};

/// The three §6.5.1 configurations.
pub fn configs() -> [(&'static str, SerializationConfig); 3] {
    [
        ("Hybrid (512B)", SerializationConfig::hybrid()),
        (
            "Only scatter-gather",
            SerializationConfig::always_zero_copy(),
        ),
        ("Only copy", SerializationConfig::always_copy()),
    ]
}

/// Runs the Figure 12 Twitter comparison. Returns (name, max krps, krps at
/// SLO).
pub fn run_twitter(num_keys: u64, duration_ns: u64, slo_ns: u64) -> Vec<(&'static str, f64, f64)> {
    let mut results = Vec::new();
    for (name, config) in configs() {
        let sweep = sweep_twitter(SerKind::Cornflakes, config, num_keys, duration_ns);
        results.push((
            name,
            sweep.max_achieved_rps() / 1e3,
            sweep.rps_at_p99_slo(slo_ns) / 1e3,
        ));
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, max, slo)| vec![n.to_string(), f1(*max), f1(*slo)])
        .collect();
    print_table(
        "Figure 12: hybrid vs SG-only vs copy-only (Twitter trace)",
        &[
            "Config",
            "Max krps",
            &format!("krps @ p99<={}us", slo_ns / 1000),
        ],
        &rows,
    );
    print_expectation(
        "hybrid vs SG-only",
        "+2.3% to +3.9% at the SLO",
        &pct((results[0].2 - results[1].2) / results[1].2 * 100.0),
    );
    results
}

/// Runs the Table 4 Google comparison: hybrid vs SG-only for each list
/// length. Returns (length, hybrid krps, sg krps).
pub fn run_google(num_keys: u64, requests: u64) -> Vec<(usize, f64, f64)> {
    let mut results = Vec::new();
    for &max_fields in &[1usize, 4, 8, 16] {
        let hybrid = google_krps(
            SerKind::Cornflakes,
            SerializationConfig::hybrid(),
            num_keys,
            max_fields,
            requests,
        );
        let sg = google_krps(
            SerKind::Cornflakes,
            SerializationConfig::always_zero_copy(),
            num_keys,
            max_fields,
            requests,
        );
        results.push((max_fields, hybrid, sg));
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, h, s)| {
            vec![
                format!("1-{n} vals"),
                f1(*h),
                f1(*s),
                pct((h - s) / s * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table 4: hybrid vs only-scatter-gather (Google distribution, krps)",
        &["List length", "Hybrid", "SG-only", "Hybrid gain"],
        &rows,
    );
    print_expectation(
        "hybrid gain",
        "+1.4% to +14.0% with >1 scatter-gather entry",
        "see table",
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_beats_both_extremes_on_twitter() {
        // Working set several times the scaled LLC, as in the paper. Two
        // runs are averaged: the cache model keys on real heap addresses,
        // so individual runs carry ~1 % allocation-layout noise, comparable
        // to the effect being measured (paper: 2.3-3.9 %).
        let mut hybrid = 0.0;
        let mut sg = 0.0;
        let mut copy = 0.0;
        for _ in 0..2 {
            let r = run_twitter(40_000, 3_000_000, 80_000);
            hybrid += r[0].2.max(r[0].1);
            sg += r[1].2.max(r[1].1);
            copy += r[2].2.max(r[2].1);
        }
        assert!(
            hybrid > copy * 1.02,
            "hybrid {hybrid:.1} must clearly beat copy-only {copy:.1}"
        );
        let gain = (hybrid - sg) / sg * 100.0;
        assert!(
            (-0.5..25.0).contains(&gain),
            "hybrid-vs-SG gain {gain:.1}% (paper 2.3-3.9%; small positive expected)"
        );
    }

    #[test]
    fn hybrid_beats_sg_only_on_google() {
        // Small-object workload: SG-only wastes bookkeeping on tiny fields.
        let results = run_google(5_000, 400);
        for (n, hybrid, sg) in results {
            assert!(
                hybrid > sg,
                "1-{n} vals: hybrid {hybrid:.1} should beat SG-only {sg:.1}"
            );
            let gain = (hybrid - sg) / sg * 100.0;
            assert!(gain < 45.0, "1-{n} vals: gain {gain:.1}% implausible");
        }
    }
}
