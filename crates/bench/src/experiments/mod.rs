//! One module per paper table/figure. See `DESIGN.md` §4 for the index.

pub mod churn;
pub mod failover;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod hotpath;
pub mod overload;
pub mod partition;
pub mod scaling;
pub mod table2;
pub mod table5;
pub mod tail_anatomy;
