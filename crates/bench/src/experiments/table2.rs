//! Table 2: the CDN image trace (§6.2.1).
//!
//! Objects (1 KB–116 MB, mean ≈ 20 KB) are stored as vectors of
//! jumbo-frame-sized sub-objects; each request fetches one sub-object and
//! all sub-objects of an object are requested sequentially. Throughput is
//! reported in full objects per second. Paper result (kobj/s): Cap'n Proto
//! 161.0, FlatBuffers 181.2, Protobuf 186.1, Cornflakes 366.5 — Cornflakes
//! 97–128 % ahead, because every field is ≥ 1 KB and zero-copy.

use cf_sim::queueing::OpenLoopSim;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::client::client_server_pair;
use cf_kv::server::SerKind;
use cf_workloads::{key_string, CdnTrace};

use crate::harness::large_pool;
use crate::tables::{f1, pct, print_expectation, print_table};

/// Max sustained throughput in thousands of full objects per second.
pub fn cdn_kobjs(kind: SerKind, num_objects: u64, requests: u64) -> f64 {
    let server_sim = Sim::new(MachineProfile::microbench());
    let (mut client, mut server) = client_server_pair(
        server_sim.clone(),
        kind,
        SerializationConfig::hybrid(),
        large_pool(),
    );
    for id in 0..num_objects {
        let sizes: Vec<usize> = (0..CdnTrace::num_segments(id))
            .map(|s| CdnTrace::segment_size(id, s))
            .collect();
        server
            .store
            .preload(server.stack.ctx(), key_string(id).as_bytes(), &sizes)
            .expect("pool sized for CDN workload");
    }
    let mut trace = CdnTrace::new(num_objects, 0xCD);
    let ol = OpenLoopSim {
        clock: server_sim.clock(),
        seed: 8,
        one_way_wire_ns: 5_000,
        duration_ns: u64::MAX / 4,
        warmup_requests: requests / 10,
    };
    let mut objects_completed = 0u64;
    let t0 = server_sim.now();
    let point = ol.run_saturated(requests, |_| {
        let (id, seg, last) = trace.next();
        let key = key_string(id);
        client.send_get_segment(key.as_bytes(), seg as u32);
        server.poll();
        let bytes = client
            .recv_response()
            .map(|r| r.payload_bytes as u64)
            .unwrap_or(0);
        if last {
            objects_completed += 1;
        }
        bytes
    });
    let _ = point;
    let elapsed = server_sim.now() - t0;
    objects_completed as f64 * 1e9 / elapsed as f64 / 1e3
}

/// Runs Table 2.
pub fn run(num_objects: u64, requests: u64) -> Vec<(SerKind, f64)> {
    let mut results = Vec::new();
    for kind in [
        SerKind::CapnProto,
        SerKind::FlatBuffers,
        SerKind::Protobuf,
        SerKind::Cornflakes,
    ] {
        results.push((kind, cdn_kobjs(kind, num_objects, requests)));
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(k, v)| vec![k.name().to_string(), f1(*v)])
        .collect();
    print_table(
        "Table 2: CDN image trace (thousands of objects/s)",
        &["System", "kobj/s"],
        &rows,
    );
    let cf = results
        .iter()
        .find(|(k, _)| *k == SerKind::Cornflakes)
        .expect("cf")
        .1;
    let best_baseline = results
        .iter()
        .filter(|(k, _)| *k != SerKind::Cornflakes)
        .map(|(_, v)| *v)
        .fold(0.0, f64::max);
    print_expectation(
        "Cornflakes vs best baseline",
        "+97% (366.5 vs 186.1 kobj/s)",
        &pct((cf - best_baseline) / best_baseline * 100.0),
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cornflakes_roughly_doubles_cdn_throughput() {
        let results = run(1_500, 800);
        let get = |k: SerKind| results.iter().find(|(x, _)| *x == k).expect("present").1;
        let cf = get(SerKind::Cornflakes);
        for kind in [SerKind::Protobuf, SerKind::FlatBuffers, SerKind::CapnProto] {
            let base = get(kind);
            let gain = (cf - base) / base * 100.0;
            assert!(
                gain > 50.0,
                "Cornflakes should be far ahead of {kind:?}: +{gain:.0}% (cf={cf:.1} base={base:.1})"
            );
            assert!(
                gain < 250.0,
                "gain {gain:.0}% vs {kind:?} implausibly large"
            );
        }
    }
}
