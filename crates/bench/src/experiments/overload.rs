//! Goodput under overload: offered load swept past saturation, with and
//! without the overload-control stack.
//!
//! The fixture is the steered multi-queue sharded server from the scaling
//! experiment. A slice-based open-loop harness offers load at a multiple
//! of the *measured* closed-loop capacity (0.5×–4×) for a fixed virtual
//! duration, then drains. Each shard serves only while its own clock is
//! behind the harness arrival clock, so offered load above capacity builds
//! a real backlog instead of being absorbed by closed-loop pacing.
//!
//! - **Control on**: server-side admission (bounded backlog + CoDel
//!   sojourn shedding + bounded NIC rx rings, GET priority) and
//!   client-side protection (retry budget + breaker + jittered backoff).
//! - **Control off**: unbounded rx staging, FIFO service, naive
//!   exponential-backoff retries.
//!
//! Goodput counts replies that arrive within the SLO
//! ([`OverloadParams::slo_ns`]) and were actually served (`SHED`
//! fast-rejects are not goodput — but they cost almost nothing and keep
//! latency bounded). The artifact (`overload.json`) shows goodput holding
//! within ~15 % of peak past saturation with control on, and collapsing —
//! or p99 inflating by ≥2× — with control off.

use std::collections::HashMap;

use cf_sim::rng::SplitMix64;

use cf_kv::client::{ProtectionConfig, RetryConfig};
use cf_kv::flags;
use cf_kv::overload::AdmissionConfig;
use cf_workloads::key_string;

use crate::artifacts::write_json_artifact;
use crate::experiments::scaling::{scaling_fixture, ScaleWorkload};
use crate::tables::{f1, print_table};

/// Sweep knobs; [`OverloadParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct OverloadParams {
    /// Shard (= NIC queue) count.
    pub queues: usize,
    /// Distinct keys, preloaded and uniformly addressed (uniform keys keep
    /// the shards balanced so the sweep measures overload, not skew).
    pub num_keys: u64,
    /// Closed-loop requests used to measure capacity.
    pub probe_requests: u64,
    /// Virtual time the open-loop load is offered for, per point.
    pub duration_ns: u64,
    /// Harness slice: arrivals are generated and the server served in
    /// slices of this many virtual nanoseconds.
    pub slice_ns: u64,
    /// Reply-latency SLO: completions slower than this are not goodput.
    pub slo_ns: u64,
    /// Offered-load multipliers applied to the measured capacity.
    pub multipliers: Vec<f64>,
    /// PUT fraction (the rest are GETs), exercising GET priority.
    pub put_fraction: f64,
}

impl OverloadParams {
    /// Full sweep: 2 shards, 0.5×–4×.
    pub fn full() -> Self {
        OverloadParams {
            queues: 2,
            num_keys: 1024,
            probe_requests: 3_000,
            duration_ns: 3_000_000,
            slice_ns: 50_000,
            slo_ns: 1_000_000,
            multipliers: vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0],
            put_fraction: 0.1,
        }
    }

    /// CI smoke preset: the same shape, a fraction of the volume.
    pub fn quick() -> Self {
        OverloadParams {
            num_keys: 256,
            probe_requests: 1_200,
            duration_ns: 1_200_000,
            multipliers: vec![0.5, 1.0, 2.0, 4.0],
            ..OverloadParams::full()
        }
    }
}

/// One measured (multiplier, control) point.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// Offered load as a multiple of measured capacity.
    pub multiplier: f64,
    /// Overload control (admission + client protection) enabled?
    pub control: bool,
    /// Arrivals offered during the load phase.
    pub offered: u64,
    /// Replies served within the SLO.
    pub good: u64,
    /// Goodput in kilo-requests/s of virtual time over the load phase.
    pub goodput_krps: f64,
    /// Median reply latency (ns) over served replies.
    pub p50_ns: u64,
    /// 99th-percentile reply latency (ns) over served replies.
    pub p99_ns: u64,
    /// `SHED` fast-rejects observed by the client.
    pub shed: u64,
    /// Requests that timed out client-side (all retries exhausted, retry
    /// budget empty, or breaker fast-fail).
    pub timed_out: u64,
    /// Client retransmissions.
    pub retries: u64,
    /// Frames tail-dropped by the bounded NIC rx rings (control on only).
    pub rx_dropped: u64,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct OverloadResult {
    /// Measured closed-loop capacity, requests/s of virtual time.
    pub capacity_rps: f64,
    /// Control-on and control-off points, interleaved per multiplier.
    pub points: Vec<OverloadPoint>,
}

impl OverloadResult {
    /// Points for one arm, ascending by multiplier.
    pub fn arm(&self, control: bool) -> Vec<&OverloadPoint> {
        self.points
            .iter()
            .filter(|p| p.control == control)
            .collect()
    }

    /// Peak goodput of one arm.
    pub fn peak_goodput(&self, control: bool) -> f64 {
        self.arm(control)
            .iter()
            .map(|p| p.goodput_krps)
            .fold(0.0, f64::max)
    }
}

/// Measures closed-loop capacity (requests/s of virtual time) on the
/// scaling fixture: saturating bursts, makespan = furthest shard clock.
pub fn measure_capacity(params: &OverloadParams) -> f64 {
    let (mut client, mut server) =
        scaling_fixture(ScaleWorkload::YcsbC, params.queues, params.num_keys);
    let mut rng = SplitMix64::new(0xCAFE);
    let mut sent = 0u64;
    while sent < params.probe_requests {
        let burst = 16.min(params.probe_requests - sent);
        for _ in 0..burst {
            let key = key_string(rng.next_bounded(params.num_keys));
            client.send_get(&[key.as_bytes()]);
            sent += 1;
        }
        server.poll();
        while client.recv_response().is_some() {}
    }
    let elapsed = server.max_clock_ns().max(1);
    server.total_requests() as f64 / elapsed as f64 * 1e9
}

/// Runs one (multiplier, control) point at `rate_rps` offered load.
pub fn run_point(
    params: &OverloadParams,
    multiplier: f64,
    rate_rps: f64,
    control: bool,
) -> OverloadPoint {
    let (mut client, mut server) =
        scaling_fixture(ScaleWorkload::YcsbC, params.queues, params.num_keys);
    if control {
        // The bounded NIC ring is the primary steady-state shedder: like
        // hardware ring overflow, a tail drop there costs zero CPU. A
        // deeper backlog with sojourn shedding retains less goodput, not
        // more — every frame that crosses rx pays full ingest cost, so
        // shedding it afterwards wastes work the ring rejects for free.
        // The CoDel layer guards the *transition* (admitted entries aged
        // past patience by a service stall), not sustained excess.
        server.enable_admission(AdmissionConfig {
            target_sojourn_ns: params.slo_ns / 2,
            ..AdmissionConfig::default()
        });
        client.enable_retries(RetryConfig {
            timeout_ns: params.slo_ns,
            max_retries: 2,
            max_backoff_ns: 4 * params.slo_ns,
            jitter_seed: Some(0x5EED ^ multiplier.to_bits()),
        });
        client.enable_protection(ProtectionConfig::default());
    } else {
        client.enable_retries(RetryConfig {
            timeout_ns: params.slo_ns,
            max_retries: 2,
            max_backoff_ns: 0,
            jitter_seed: None,
        });
    }

    let mut rng = SplitMix64::new(0xD15EA5E ^ multiplier.to_bits());
    let interarrival = 1e9 / rate_rps;
    let put_scratch = vec![0xB0u8; 1024];

    let mut send_time: HashMap<u32, u64> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut offered = 0u64;
    let mut good = 0u64;
    let mut shed = 0u64;
    let mut timed_out = 0u64;
    let mut next_arrival = 0.0f64;

    let mut t = 0u64;
    // Load phase, then a drain phase long enough for the uncontrolled
    // backlog to clear (bounded so a pathological arm still terminates).
    let drain_deadline = params.duration_ns.saturating_mul(8);
    loop {
        let t_next = t + params.slice_ns;
        // Offer this slice's arrivals (load phase only).
        if t < params.duration_ns {
            let client_clock = client.stack.sim().clock();
            if client_clock.now() < t {
                client_clock.advance_to(t);
            }
            while next_arrival < t_next as f64 && (next_arrival as u64) < params.duration_ns {
                let key = key_string(rng.next_bounded(params.num_keys));
                let id = if rng.next_f64() < params.put_fraction {
                    client.send_put(key.as_bytes(), &put_scratch)
                } else {
                    client.send_get(&[key.as_bytes()])
                };
                send_time.insert(id, next_arrival as u64);
                offered += 1;
                next_arrival += interarrival;
            }
        }
        // Serve: each shard runs only until the harness clock.
        if control {
            server.poll_admitted_until(t_next, t_next);
        } else {
            server.poll_until(t_next, t_next);
        }
        // Collect replies and fire timers on the advanced client clock.
        let client_clock = client.stack.sim().clock();
        if client_clock.now() < t_next {
            client_clock.advance_to(t_next);
        }
        while let Some(resp) = client.recv_response() {
            let Some(id) = resp.id else { continue };
            let Some(sent_at) = send_time.remove(&id) else {
                continue;
            };
            if resp.flags & flags::SHED != 0 {
                shed += 1;
                continue;
            }
            let lat = t_next.saturating_sub(sent_at);
            latencies.push(lat);
            if lat <= params.slo_ns {
                good += 1;
            }
        }
        for id in client.poll_timers() {
            if send_time.remove(&id).is_some() {
                timed_out += 1;
            }
        }
        t = t_next;
        let loading = t < params.duration_ns;
        let draining = !send_time.is_empty() || server.backlog_len() > 0;
        if !loading && (!draining || t >= drain_deadline) {
            break;
        }
    }

    latencies.sort_unstable();
    let pick = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    OverloadPoint {
        multiplier,
        control,
        offered,
        good,
        goodput_krps: good as f64 / params.duration_ns as f64 * 1e6,
        p50_ns: pick(0.50),
        p99_ns: pick(0.99),
        shed,
        timed_out,
        retries: client.retries_sent(),
        rx_dropped: server.rx_backlog_drops(),
    }
}

/// Runs the sweep: measure capacity once, then every multiplier × arm.
pub fn sweep(params: &OverloadParams) -> OverloadResult {
    let capacity_rps = measure_capacity(params);
    let mut points = Vec::new();
    for &m in &params.multipliers {
        let rate = capacity_rps * m;
        for control in [true, false] {
            points.push(run_point(params, m, rate, control));
        }
    }
    OverloadResult {
        capacity_rps,
        points,
    }
}

/// Renders the sweep as the `overload.json` artifact body.
pub fn to_json(r: &OverloadResult) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"overload\",\n  \"capacity_rps\": {:.1},\n  \"points\": [\n",
        r.capacity_rps
    );
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"multiplier\": {:.2}, \"control\": {}, \"offered\": {}, \"good\": {}, \"goodput_krps\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, \"shed\": {}, \"timed_out\": {}, \"rx_dropped\": {}}}{}\n",
            p.multiplier,
            p.control,
            p.offered,
            p.good,
            p.goodput_krps,
            p.p50_ns,
            p.p99_ns,
            p.shed,
            p.timed_out,
            p.rx_dropped,
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the full sweep, prints the table, writes `overload.json`.
pub fn run(params: &OverloadParams) -> OverloadResult {
    let r = sweep(params);
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}x", p.multiplier),
                if p.control { "on" } else { "off" }.to_string(),
                f1(p.goodput_krps),
                format!("{}", p.p99_ns / 1000),
                p.shed.to_string(),
                p.timed_out.to_string(),
                p.rx_dropped.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Overload: goodput vs offered load (capacity {:.0} krps)",
            r.capacity_rps / 1e3
        ),
        &[
            "Offered",
            "Control",
            "Goodput krps",
            "p99 us",
            "Shed",
            "TimedOut",
            "RxDrop",
        ],
        &rows,
    );
    match write_json_artifact("overload", &to_json(&r)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => println!("  artifact write failed: {e}"),
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlled_goodput_holds_past_saturation_and_uncontrolled_degrades() {
        let params = OverloadParams::quick();
        let r = sweep(&params);
        let on = r.arm(true);
        let off = r.arm(false);
        let peak_on = r.peak_goodput(true);
        assert!(peak_on > 0.0, "controlled arm serves traffic");

        // With control on, goodput at every post-saturation multiplier
        // stays within 15% of the arm's peak.
        for p in on.iter().filter(|p| p.multiplier >= 2.0) {
            assert!(
                p.goodput_krps >= peak_on * 0.85,
                "controlled goodput retained at {}x: {:.1} vs peak {:.1}",
                p.multiplier,
                p.goodput_krps,
                peak_on
            );
        }
        // The admission layer is actually doing the work: past saturation
        // it sheds and/or tail-drops rather than queueing unboundedly.
        let at4_on = on.iter().find(|p| p.multiplier == 4.0).unwrap();
        assert!(
            at4_on.shed + at4_on.rx_dropped + at4_on.timed_out > 0,
            "overload must be rejected somewhere, not absorbed"
        );

        // Without control the system degrades past saturation: goodput
        // collapses below 50% of its peak, or p99 inflates >= 2x vs 1x.
        let peak_off = r.peak_goodput(false);
        let at4_off = off.iter().find(|p| p.multiplier == 4.0).unwrap();
        let at1_off = off.iter().find(|p| p.multiplier == 1.0).unwrap();
        let collapsed = at4_off.goodput_krps < peak_off * 0.5;
        let inflated = at4_off.p99_ns >= 2 * at1_off.p99_ns.max(1);
        assert!(
            collapsed || inflated,
            "uncontrolled arm must collapse or inflate: goodput {:.1} (peak {:.1}), p99 {} vs {}",
            at4_off.goodput_krps,
            peak_off,
            at4_off.p99_ns,
            at1_off.p99_ns
        );
    }

    #[test]
    fn artifact_json_is_valid() {
        let mut params = OverloadParams::quick();
        params.multipliers = vec![0.5, 2.0];
        params.probe_requests = 400;
        params.duration_ns = 400_000;
        let r = sweep(&params);
        let json = to_json(&r);
        cf_telemetry::json::validate(&json).expect("valid JSON");
        assert!(json.contains("\"control\": true"));
        assert!(!json.contains("\"multiplier\": 4.00"));
    }
}
