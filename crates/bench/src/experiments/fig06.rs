//! Table 1 + Figure 6: the Google-distribution workload (§6.2.1).
//!
//! Values are linked lists of 1, 1–4, 1–8, or 1–16 fields with sizes from
//! Google's fleetwide Protobuf study (≈95 % below 512 B, so Cornflakes
//! mostly copies). Paper result (krps): Cornflakes within ~2 % of Protobuf
//! at 1 and 1–4 values, ahead of everything at 1–8 and 1–16; Cap'n Proto
//! trails throughout.

use cf_sim::queueing::{load_ladder, OpenLoopSim};
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::client::client_server_pair;
use cf_kv::server::SerKind;
use cf_workloads::{key_string, Zipf};

use crate::harness::large_pool;
use crate::tables::{f1, print_expectation, print_table};

/// Max sustained krps for one (system, list-length) cell.
pub fn google_krps(
    kind: SerKind,
    config: SerializationConfig,
    num_keys: u64,
    max_fields: usize,
    requests: u64,
) -> f64 {
    let server_sim = Sim::new(MachineProfile::microbench());
    let (mut client, mut server) =
        client_server_pair(server_sim.clone(), kind, config, large_pool());
    for id in 0..num_keys {
        let sizes = cf_workloads::GoogleSizeDist::object_for_key(id, max_fields);
        server
            .store
            .preload(server.stack.ctx(), key_string(id).as_bytes(), &sizes)
            .expect("pool sized for Google workload");
    }
    let mut zipf = Zipf::new(num_keys, 0.99, 0x60061e);
    let ol = OpenLoopSim {
        clock: server_sim.clock(),
        seed: 6,
        one_way_wire_ns: 5_000,
        duration_ns: u64::MAX / 4,
        warmup_requests: requests / 10,
    };
    let point = ol.run_saturated(requests, |_| {
        let key = key_string(zipf.next());
        client.send_get(&[key.as_bytes()]);
        server.poll();
        client
            .recv_response()
            .map(|r| r.payload_bytes as u64)
            .unwrap_or(0)
    });
    point.achieved_rps / 1e3
}

/// Runs Table 1 (max krps per system per list length). Returns
/// `result[system][length_idx]` in krps.
pub fn run_table1(num_keys: u64, requests: u64) -> Vec<(SerKind, Vec<f64>)> {
    let lengths = [1usize, 4, 8, 16];
    let mut results = Vec::new();
    for kind in SerKind::all() {
        let mut row = Vec::new();
        for &max_fields in &lengths {
            row.push(google_krps(
                kind,
                SerializationConfig::hybrid(),
                num_keys,
                max_fields,
                requests,
            ));
        }
        results.push((kind, row));
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(kind, krps)| {
            let mut row = vec![kind.name().to_string()];
            row.extend(krps.iter().map(|&v| f1(v)));
            row
        })
        .collect();
    print_table(
        "Table 1: Google bytes distribution (max krps)",
        &["System", "1 val", "1-4 vals", "1-8 vals", "1-16 vals"],
        &rows,
    );
    let cf = &results[0].1;
    let proto = &results[1].1;
    print_expectation(
        "Cornflakes vs Protobuf",
        "within ~2% at 1 / 1-4 vals; ahead at 1-16 (441.2 vs 402.0 krps)",
        &format!(
            "ratios {:.3} / {:.3} / {:.3} / {:.3}",
            cf[0] / proto[0],
            cf[1] / proto[1],
            cf[2] / proto[2],
            cf[3] / proto[3]
        ),
    );
    results
}

/// Runs the Figure 6 throughput-latency sweep (1–8 values per list).
pub fn run_fig6_curves(num_keys: u64, duration_ns: u64) {
    println!("\n=== Figure 6: throughput vs p99, Google 1-8 vals ===");
    for kind in SerKind::all() {
        let server_sim = Sim::new(MachineProfile::microbench());
        let (mut client, mut server) = client_server_pair(
            server_sim.clone(),
            kind,
            SerializationConfig::hybrid(),
            large_pool(),
        );
        for id in 0..num_keys {
            let sizes = cf_workloads::GoogleSizeDist::object_for_key(id, 8);
            server
                .store
                .preload(server.stack.ctx(), key_string(id).as_bytes(), &sizes)
                .expect("pool sized");
        }
        let mut zipf = Zipf::new(num_keys, 0.99, 0x60061e);
        let ol = OpenLoopSim {
            clock: server_sim.clock(),
            seed: 6,
            one_way_wire_ns: 5_000,
            duration_ns,
            warmup_requests: 2_000,
        };
        // Probe capacity, then sweep.
        let cap = {
            let c = &mut client;
            let s = &mut server;
            ol.run_saturated(3_000, |_| {
                let key = key_string(zipf.next());
                c.send_get(&[key.as_bytes()]);
                s.poll();
                c.recv_response()
                    .map(|r| r.payload_bytes as u64)
                    .unwrap_or(0)
            })
            .achieved_rps
        };
        println!("  [{}]", kind.name());
        for load in load_ladder(cap * 0.4, cap * 0.98, 5) {
            server_sim.reset();
            let p = {
                let c = &mut client;
                let s = &mut server;
                ol.run(load, |_| {
                    let key = key_string(zipf.next());
                    c.send_get(&[key.as_bytes()]);
                    s.poll();
                    c.recv_response()
                        .map(|r| r.payload_bytes as u64)
                        .unwrap_or(0)
                })
            };
            println!(
                "    offered {:8.1} krps  achieved {:8.1} krps  p99 {:6.1} us",
                p.offered_rps / 1e3,
                p.achieved_rps / 1e3,
                p.latency.p99() as f64 / 1e3
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_scaled_down() {
        let results = run_table1(6_000, 500);
        let krps: std::collections::HashMap<SerKind, &Vec<f64>> =
            results.iter().map(|(k, v)| (*k, v)).collect();
        let cf = krps[&SerKind::Cornflakes];
        let proto = krps[&SerKind::Protobuf];
        let capn = krps[&SerKind::CapnProto];
        // Cornflakes within 10 % of Protobuf on short lists...
        assert!(
            (cf[0] / proto[0] - 1.0).abs() < 0.10,
            "1 val: cf={} proto={}",
            cf[0],
            proto[0]
        );
        // ...and strictly ahead at 1-16 values.
        assert!(
            cf[3] > proto[3],
            "1-16 vals: cf={} proto={}",
            cf[3],
            proto[3]
        );
        // Cap'n Proto trails Cornflakes throughout (paper Table 1).
        for i in 0..4 {
            assert!(capn[i] < cf[i], "capn[{i}]={} cf={}", capn[i], cf[i]);
        }
        // Longer lists cost more per request for every system.
        for (_, row) in &results {
            assert!(row[0] > row[3]);
        }
    }
}
