//! Tail-latency anatomy: where the p99.9 actually goes.
//!
//! The overload experiment (`overload.rs`) shows *that* control keeps
//! goodput; this one shows *where the time went* for the requests that
//! define the tail. The fixture is the same steered multi-queue sharded
//! server at a fixed overload multiplier (default 2× measured capacity)
//! with wire faults armed, driven by the same slice-based open-loop
//! harness — but with a [`FlightRecorder`] shared across the client and
//! every shard, drained once per slice so the ring never overwrites.
//!
//! For each served request the recorded lifecycle anchors — first send,
//! last (re)transmission, backlog admission, shard dispatch, reply post,
//! client receive — are folded into five consecutive phases:
//!
//! | phase        | interval                       | what it measures        |
//! |--------------|--------------------------------|-------------------------|
//! | `retry_wait` | first send → last attempt      | timeouts + backoff      |
//! | `queueing`   | last attempt → backlog admit   | wire + NIC staging ring |
//! | `sojourn`    | admit → shard dispatch         | backlog residence       |
//! | `service`    | dispatch → reply posted        | deserialize/app/serialize|
//! | `wire`       | reply posted → client receive  | return path + harness slice |
//!
//! Each anchor is clamped to run monotonically forward (a missing anchor
//! contributes zero), so the five phases telescope: their sum equals the
//! request's own end-to-end latency exactly, except when a shard's service
//! clock overshoots the receive stamp — the artifact test bounds the
//! discrepancy at 2 %. The report picks the *concrete* request sitting at
//! p50 / p99 / p99.9 of the end-to-end distribution and prints its
//! breakdown plus full event timeline; the `kv.client.e2e_latency_ns`
//! histogram carries exemplar request ids (bucket maxima), so the same
//! outlier is reachable from the metrics side too. Emits
//! `tail_anatomy.json`.

use std::collections::HashMap;

use cf_net::UdpStack;
use cf_nic::{link, FaultPlan};
use cf_sim::rng::SplitMix64;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::{FlightEvent, FlightRecord, FlightRecorder, Telemetry};
use cornflakes_core::SerializationConfig;

use cf_kv::client::{KvClient, ProtectionConfig, RetryConfig, CLIENT_PORT};
use cf_kv::flags;
use cf_kv::overload::AdmissionConfig;
use cf_kv::server::SerKind;
use cf_kv::sharded::ShardedKvServer;
use cf_workloads::key_string;

use crate::artifacts::{write_json_artifact, write_metrics_artifact};
use crate::harness::large_pool;
use crate::tables::print_table;

/// Service-cost multiplier applied to the shards' per-packet base cost.
/// A single simulated load-generator machine pays ~426 ns per send, which
/// caps its offered rate *below* the calibrated two-shard capacity — one
/// client can never overload that server in coherent wall-clock time.
/// Derating the shards (the classic slow-the-disk queueing-study move)
/// restores a genuine 2× overload from one client while every flight
/// stamp stays on one comparable timebase. Capacity is re-measured on the
/// derated fixture, so "2×" is honest.
const SHARD_DERATE: f64 = 6.0;

/// Requests per closed-loop probe burst (matches the scaling harness).
const BURST: u64 = 16;

/// Harness knobs; [`TailAnatomyParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct TailAnatomyParams {
    /// Shard (= NIC queue) count.
    pub queues: usize,
    /// Distinct keys, preloaded and uniformly addressed.
    pub num_keys: u64,
    /// Closed-loop requests used to measure capacity.
    pub probe_requests: u64,
    /// Virtual time the open-loop load is offered for.
    pub duration_ns: u64,
    /// Harness slice (arrival-clock granularity).
    pub slice_ns: u64,
    /// Client retry deadline (also the CoDel sojourn target's base).
    pub slo_ns: u64,
    /// Offered load as a multiple of measured capacity (the paper's tail
    /// stories live past saturation; default 2×).
    pub multiplier: f64,
    /// PUT fraction (the rest are GETs).
    pub put_fraction: f64,
    /// Wire drop probability on the server's receive direction — faults
    /// make retries and dedup hits show up in the anatomy.
    pub drop_prob: f64,
    /// Flight-recorder ring capacity (drained every slice).
    pub flight_capacity: usize,
}

impl TailAnatomyParams {
    /// Full run: 2 shards at 2× capacity for 3 ms of virtual time.
    pub fn full() -> Self {
        TailAnatomyParams {
            queues: 2,
            num_keys: 1024,
            probe_requests: 3_000,
            duration_ns: 3_000_000,
            // Finer than the overload harness's 50 µs: flight anchors on
            // different machine clocks can skew by up to one slice, so the
            // slice must be small against the phase durations it resolves.
            slice_ns: 10_000,
            slo_ns: 1_000_000,
            multiplier: 2.0,
            put_fraction: 0.1,
            drop_prob: 0.02,
            flight_capacity: 1 << 16,
        }
    }

    /// CI smoke preset: the same shape, a fraction of the volume.
    pub fn quick() -> Self {
        TailAnatomyParams {
            num_keys: 256,
            probe_requests: 1_200,
            duration_ns: 1_200_000,
            ..TailAnatomyParams::full()
        }
    }
}

/// The five consecutive phases one request's latency decomposes into.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Phases {
    /// First send → last (re)transmission: timeout + backoff time.
    pub retry_wait_ns: u64,
    /// Last attempt → backlog admission: wire plus NIC staging.
    pub queueing_ns: u64,
    /// Admission → shard dispatch: backlog residence.
    pub sojourn_ns: u64,
    /// Dispatch → reply posted: deserialize + app + serialize.
    pub service_ns: u64,
    /// Reply posted → client receive: return path.
    pub wire_ns: u64,
}

impl Phases {
    /// Sum of the five phases; telescopes to the request's end-to-end
    /// latency (see [`decompose`]).
    pub fn sum_ns(&self) -> u64 {
        self.retry_wait_ns + self.queueing_ns + self.sojourn_ns + self.service_ns + self.wire_ns
    }
}

/// Decomposes one request's flight timeline into `(e2e_ns, Phases)`.
/// Returns `None` unless the timeline has both a `ClientSend` and a
/// `ClientRecv` (i.e. the request completed).
///
/// Anchors are folded with a running maximum, so clock skew between
/// machines or a missing anchor (e.g. an un-admitted fast path) yields a
/// zero-length phase, never a negative one — and the phase sum telescopes
/// to `max(anchors) - first_send`, which equals `e2e` whenever the client
/// receive stamp is the latest anchor (the normal case).
pub fn decompose(events: &[FlightRecord]) -> Option<(u64, Phases)> {
    let mut send: Option<u64> = None;
    let mut attempt: Option<u64> = None;
    let mut admit: Option<u64> = None;
    let mut dispatch: Option<u64> = None;
    let mut reply: Option<u64> = None;
    let mut recv: Option<u64> = None;
    let keep_max = |slot: &mut Option<u64>, ts: u64| {
        *slot = Some(slot.map_or(ts, |t| t.max(ts)));
    };
    for r in events {
        match r.event {
            FlightEvent::ClientSend => {
                if send.is_none() {
                    send = Some(r.ts_ns);
                }
                keep_max(&mut attempt, r.ts_ns);
            }
            FlightEvent::ClientRetry { .. } => keep_max(&mut attempt, r.ts_ns),
            FlightEvent::BacklogAdmit { .. } => keep_max(&mut admit, r.ts_ns),
            FlightEvent::ShardDispatch { .. } => keep_max(&mut dispatch, r.ts_ns),
            FlightEvent::Reply { .. } => keep_max(&mut reply, r.ts_ns),
            FlightEvent::ClientRecv { .. } => keep_max(&mut recv, r.ts_ns),
            _ => {}
        }
    }
    let send = send?;
    let recv = recv?;
    let mut cursor = send;
    let mut step = |anchor: Option<u64>| -> u64 {
        let next = cursor.max(anchor.unwrap_or(cursor));
        let delta = next - cursor;
        cursor = next;
        delta
    };
    let phases = Phases {
        retry_wait_ns: step(attempt),
        queueing_ns: step(admit),
        sojourn_ns: step(dispatch),
        service_ns: step(reply),
        wire_ns: step(Some(recv)),
    };
    Some((recv.saturating_sub(send), phases))
}

/// One quantile's concrete exemplar request and its breakdown.
#[derive(Clone, Debug)]
pub struct QuantileRow {
    /// Display label (`p50`, `p99`, `p99.9`).
    pub label: &'static str,
    /// The quantile as a fraction.
    pub q: f64,
    /// The request id sitting at this quantile of the e2e distribution.
    pub req_id: u32,
    /// That request's end-to-end latency (first send → receive).
    pub e2e_ns: u64,
    /// Its phase decomposition.
    pub phases: Phases,
}

/// The full run result.
#[derive(Clone, Debug)]
pub struct TailAnatomyResult {
    /// Measured closed-loop capacity, requests/s of virtual time.
    pub capacity_rps: f64,
    /// Arrivals offered during the load phase.
    pub offered: u64,
    /// Requests served (non-SHED reply received).
    pub served: u64,
    /// `SHED` fast-rejects observed by the client.
    pub shed: u64,
    /// Requests concluded client-side as timed out.
    pub timed_out: u64,
    /// Client retransmissions.
    pub retries: u64,
    /// Mean backlog sojourn of shed entries (from `BacklogShed` events).
    pub shed_sojourn_mean_ns: u64,
    /// Exemplar rows at p50 / p99 / p99.9, ascending.
    pub rows: Vec<QuantileRow>,
    /// Full per-request timelines for the exemplar rows' ids.
    pub timelines: HashMap<u32, Vec<FlightRecord>>,
    /// `(value, req_id)` exemplars from the e2e latency histogram.
    pub exemplars: Vec<(u64, u64)>,
}

/// Runs the harness: measures capacity, offers `multiplier ×` that rate
/// Steered client + sharded server, like the scaling fixture but with the
/// shards' per-packet cost derated by [`SHARD_DERATE`] (see there).
fn anatomy_fixture(queues: usize, num_keys: u64) -> (KvClient, ShardedKvServer) {
    let mut profile = MachineProfile::microbench();
    profile.name = "derated shard (tail-anatomy load rig)";
    profile.costs.per_packet_base *= SHARD_DERATE;
    let sims: Vec<Sim> = (0..queues).map(|_| Sim::new(profile.clone())).collect();
    let (cp, sp) = link();
    let mut server = ShardedKvServer::on_sims(
        sims,
        sp,
        SerKind::Cornflakes,
        SerializationConfig::hybrid(),
        large_pool(),
    );
    server.enable_tx_batch(BURST as usize);
    let client_sim = Sim::new(MachineProfile::cloudlab_c6525());
    let client_stack = UdpStack::with_pool_config(
        client_sim,
        cp,
        CLIENT_PORT,
        SerializationConfig::hybrid(),
        large_pool(),
    );
    let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
    client.enable_steering(&server.rss());
    for id in 0..num_keys {
        server
            .preload(key_string(id).as_bytes(), &[1024])
            .expect("pool sized for anatomy workload");
    }
    (client, server)
}

/// Closed-loop capacity of the *derated* fixture (requests/s of virtual
/// time): saturating bursts, makespan = furthest shard clock.
fn measure_derated_capacity(params: &TailAnatomyParams) -> f64 {
    let (mut client, mut server) = anatomy_fixture(params.queues, params.num_keys);
    let mut rng = SplitMix64::new(0xCAFE);
    let mut sent = 0u64;
    while sent < params.probe_requests {
        let burst = BURST.min(params.probe_requests - sent);
        for _ in 0..burst {
            let key = key_string(rng.next_bounded(params.num_keys));
            client.send_get(&[key.as_bytes()]);
            sent += 1;
        }
        server.poll();
        while client.recv_response().is_some() {}
    }
    let elapsed = server.max_clock_ns().max(1);
    server.total_requests() as f64 / elapsed as f64 * 1e9
}

/// with faults armed and the flight recorder installed end to end, and
/// decomposes the tail. `tele` receives the `kv.client.e2e_latency_ns`
/// histogram (with exemplars) alongside the full datapath metrics.
pub fn run_anatomy(params: &TailAnatomyParams, tele: &Telemetry) -> TailAnatomyResult {
    let capacity_rps = measure_derated_capacity(params);
    let rate_rps = capacity_rps * params.multiplier;

    let (mut client, mut server) = anatomy_fixture(params.queues, params.num_keys);
    server.enable_admission(AdmissionConfig {
        target_sojourn_ns: params.slo_ns / 2,
        ..AdmissionConfig::default()
    });
    client.enable_retries(RetryConfig {
        timeout_ns: params.slo_ns,
        max_retries: 2,
        max_backoff_ns: 4 * params.slo_ns,
        jitter_seed: Some(0x7A11),
    });
    client.enable_protection(ProtectionConfig::default());
    let _faults = server.install_faults(FaultPlan::seeded(0xFA17).with_drop(params.drop_prob));

    // One recorder shared by every machine: client, shards, and the
    // server NIC interleave into a single per-request timeline.
    let flight = FlightRecorder::with_capacity(params.flight_capacity);
    client.set_flight_recorder(&flight);
    server.set_flight_recorder(&flight);
    client.set_telemetry(tele);
    let e2e_hist = tele.histogram("kv.client.e2e_latency_ns");

    let mut rng = SplitMix64::new(0xD15EA5E ^ params.multiplier.to_bits());
    let interarrival = 1e9 / rate_rps;
    let put_scratch = vec![0xB0u8; 1024];

    let mut in_flight: HashMap<u32, ()> = HashMap::new();
    let mut events: HashMap<u32, Vec<FlightRecord>> = HashMap::new();
    let mut served_ids: Vec<u32> = Vec::new();
    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut timed_out = 0u64;
    let mut next_arrival = 0.0f64;

    let mut t = 0u64;
    let mut prev_wall = 0u64;
    let drain_deadline = params.duration_ns.saturating_mul(8);
    loop {
        let t_next = t + params.slice_ns;
        if t < params.duration_ns {
            let client_clock = client.stack.sim().clock();
            if client_clock.now() < t {
                client_clock.advance_to(t);
            }
            while next_arrival < t_next as f64 && (next_arrival as u64) < params.duration_ns {
                // Pace each send to its arrival instant on the client
                // clock: the load generator's machine clock is the
                // experiment's wall clock, so flight stamps from every
                // layer stay comparable. If send-side work outruns the
                // pace the clock drifts ahead and arrivals go out
                // back-to-back at client capacity.
                if client_clock.now() < next_arrival as u64 {
                    client_clock.advance_to(next_arrival as u64);
                }
                let key = key_string(rng.next_bounded(params.num_keys));
                let id = if rng.next_f64() < params.put_fraction {
                    client.send_put(key.as_bytes(), &put_scratch)
                } else {
                    client.send_get(&[key.as_bytes()])
                };
                in_flight.insert(id, ());
                offered += 1;
                next_arrival += interarrival;
            }
        }
        // Poll the server to the wall clock, not the nominal slice edge:
        // shard service clocks then track the same timebase the client
        // stamps with, so admit/dispatch/reply anchors land *after* the
        // sends they answer instead of being clamped away by skew. A shard
        // whose backlog emptied mid-slice parks its clock where service
        // stopped; catch lagging clocks up to the previous wall first —
        // unused slice budget is idle time, not banked burst capacity.
        let wall = client.stack.sim().now().max(t_next);
        for sim in server.sims() {
            let shard_clock = sim.clock();
            if shard_clock.now() < prev_wall {
                shard_clock.advance_to(prev_wall);
            }
        }
        server.poll_admitted_until(wall, wall);
        prev_wall = wall;
        let client_clock = client.stack.sim().clock();
        if client_clock.now() < t_next {
            client_clock.advance_to(t_next);
        }
        while let Some(resp) = client.recv_response() {
            let Some(id) = resp.id else { continue };
            if in_flight.remove(&id).is_none() {
                continue;
            }
            if resp.flags & flags::SHED != 0 {
                shed += 1;
                continue;
            }
            served_ids.push(id);
        }
        for id in client.poll_timers() {
            if in_flight.remove(&id).is_some() {
                timed_out += 1;
            }
        }
        // Drain the shared ring every slice: the per-request index grows
        // on the harness heap, the hot-path ring stays bounded and never
        // overwrites.
        for rec in flight.drain() {
            events.entry(rec.req_id).or_default().push(rec);
        }
        t = t_next;
        let loading = t < params.duration_ns;
        let draining = !in_flight.is_empty() || server.backlog_len() > 0;
        if !loading && (!draining || t >= drain_deadline) {
            break;
        }
    }
    for rec in flight.drain() {
        events.entry(rec.req_id).or_default().push(rec);
    }

    // Event-derived end-to-end latencies; exemplars link each histogram
    // magnitude bucket back to the slowest concrete request in it.
    let mut lats: Vec<(u64, u32, Phases)> = Vec::new();
    for &id in &served_ids {
        if let Some((e2e, phases)) = events.get(&id).and_then(|evs| decompose(evs)) {
            e2e_hist.record_exemplar(e2e, u64::from(id));
            lats.push((e2e, id, phases));
        }
    }
    lats.sort_unstable_by_key(|&(e2e, id, _)| (e2e, id));

    let pick = |q: f64| -> Option<&(u64, u32, Phases)> {
        if lats.is_empty() {
            return None;
        }
        let idx = ((lats.len() - 1) as f64 * q).round() as usize;
        lats.get(idx)
    };
    let mut rows = Vec::new();
    for (label, q) in [("p50", 0.50), ("p99", 0.99), ("p99.9", 0.999)] {
        if let Some(&(e2e, id, phases)) = pick(q) {
            rows.push(QuantileRow {
                label,
                q,
                req_id: id,
                e2e_ns: e2e,
                phases,
            });
        }
    }
    let timelines: HashMap<u32, Vec<FlightRecord>> = rows
        .iter()
        .filter_map(|r| events.get(&r.req_id).map(|evs| (r.req_id, evs.clone())))
        .collect();

    let shed_sojourns: Vec<u64> = events
        .values()
        .flatten()
        .filter_map(|r| match r.event {
            FlightEvent::BacklogShed { sojourn_ns } => Some(sojourn_ns),
            _ => None,
        })
        .collect();
    let shed_sojourn_mean_ns = if shed_sojourns.is_empty() {
        0
    } else {
        shed_sojourns.iter().sum::<u64>() / shed_sojourns.len() as u64
    };

    TailAnatomyResult {
        capacity_rps,
        offered,
        served: lats.len() as u64,
        shed,
        timed_out,
        retries: client.retries_sent(),
        shed_sojourn_mean_ns,
        rows,
        timelines,
        exemplars: e2e_hist
            .exemplars()
            .into_iter()
            .map(|e| (e.value, e.req_id))
            .collect(),
    }
}

fn timeline_json(events: &[FlightRecord]) -> String {
    let mut out = String::from("[");
    for (i, rec) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"ts_ns\": {}, \"event\": \"{}\"",
            rec.ts_ns,
            rec.event.label()
        ));
        if let Some((k, v)) = rec.event.detail() {
            out.push_str(&format!(", \"{k}\": {v}"));
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders the result as the `tail_anatomy.json` artifact body.
pub fn to_json(params: &TailAnatomyParams, r: &TailAnatomyResult) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"tail_anatomy\",\n  \"multiplier\": {:.2},\n  \"capacity_rps\": {:.1},\n  \"offered\": {},\n  \"served\": {},\n  \"shed\": {},\n  \"timed_out\": {},\n  \"retries\": {},\n  \"shed_sojourn_mean_ns\": {},\n  \"quantiles\": [\n",
        params.multiplier,
        r.capacity_rps,
        r.offered,
        r.served,
        r.shed,
        r.timed_out,
        r.retries,
        r.shed_sojourn_mean_ns,
    );
    for (i, row) in r.rows.iter().enumerate() {
        let p = &row.phases;
        out.push_str(&format!(
            "    {{\"quantile\": \"{}\", \"q\": {}, \"req_id\": {}, \"e2e_ns\": {}, \"phase_sum_ns\": {}, \"phases\": {{\"retry_wait_ns\": {}, \"queueing_ns\": {}, \"sojourn_ns\": {}, \"service_ns\": {}, \"wire_ns\": {}}}, \"timeline\": {}}}{}\n",
            row.label,
            row.q,
            row.req_id,
            row.e2e_ns,
            p.sum_ns(),
            p.retry_wait_ns,
            p.queueing_ns,
            p.sojourn_ns,
            p.service_ns,
            p.wire_ns,
            r.timelines
                .get(&row.req_id)
                .map_or_else(|| "[]".to_string(), |evs| timeline_json(evs)),
            if i + 1 < r.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"exemplars\": [\n");
    for (i, (value, req_id)) in r.exemplars.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"value\": {value}, \"req_id\": {req_id}}}{}\n",
            if i + 1 < r.exemplars.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the harness, prints the anatomy table, writes `tail_anatomy.json`
/// and the `tail_anatomy-metrics.json` snapshot.
pub fn run(params: &TailAnatomyParams) -> TailAnatomyResult {
    let tele = Telemetry::new(
        cf_sim::Clock::new(),
        cf_telemetry::TelemetryConfig::default(),
    );
    let r = run_anatomy(params, &tele);
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            let p = &row.phases;
            vec![
                row.label.to_string(),
                row.req_id.to_string(),
                format!("{:.1}", row.e2e_ns as f64 / 1000.0),
                format!("{:.1}", p.retry_wait_ns as f64 / 1000.0),
                format!("{:.1}", p.queueing_ns as f64 / 1000.0),
                format!("{:.1}", p.sojourn_ns as f64 / 1000.0),
                format!("{:.1}", p.service_ns as f64 / 1000.0),
                format!("{:.1}", p.wire_ns as f64 / 1000.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Tail anatomy at {:.1}x capacity ({:.0} krps): where the time goes (us)",
            params.multiplier,
            r.capacity_rps / 1e3
        ),
        &[
            "Quantile", "ReqId", "e2e", "Retry", "Queue", "Sojourn", "Service", "Wire",
        ],
        &rows,
    );
    match write_json_artifact("tail_anatomy", &to_json(params, &r)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => println!("  artifact write failed: {e}"),
    }
    match write_metrics_artifact("tail_anatomy", &tele) {
        Ok(path) => println!("  metrics:  {}", path.display()),
        Err(e) => println!("  metrics write failed: {e}"),
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_sim::Clock;
    use cf_telemetry::TelemetryConfig;

    fn test_params() -> TailAnatomyParams {
        TailAnatomyParams {
            num_keys: 128,
            probe_requests: 600,
            duration_ns: 600_000,
            ..TailAnatomyParams::quick()
        }
    }

    #[test]
    fn decompose_telescopes_to_e2e() {
        use FlightEvent::*;
        let mk = |req_id, ts_ns, event| FlightRecord {
            req_id,
            ts_ns,
            event,
        };
        let evs = vec![
            mk(5, 100, ClientSend),
            mk(
                5,
                1_100,
                ClientRetry {
                    attempt: 1,
                    backoff_ns: 1_000,
                },
            ),
            mk(5, 1_150, BacklogAdmit { backlog: 7 }),
            mk(5, 1_400, ShardDispatch { shard: 1 }),
            mk(5, 1_900, Reply { flags: 0 }),
            mk(5, 2_300, ClientRecv { flags: 0 }),
        ];
        let (e2e, p) = decompose(&evs).expect("completed request");
        assert_eq!(e2e, 2_200);
        assert_eq!(p.retry_wait_ns, 1_000);
        assert_eq!(p.queueing_ns, 50);
        assert_eq!(p.sojourn_ns, 250);
        assert_eq!(p.service_ns, 500);
        assert_eq!(p.wire_ns, 400);
        assert_eq!(p.sum_ns(), e2e, "phases telescope exactly");

        // A missing anchor collapses its phase to zero; the sum still
        // telescopes.
        let evs = vec![mk(6, 10, ClientSend), mk(6, 90, ClientRecv { flags: 0 })];
        let (e2e, p) = decompose(&evs).expect("completed");
        assert_eq!((e2e, p.sum_ns()), (80, 80));
        assert_eq!(p.wire_ns, 80, "everything lands in the last phase");

        // Incomplete timelines are rejected.
        assert!(decompose(&[mk(7, 10, ClientSend)]).is_none());
        assert!(decompose(&[]).is_none());
    }

    #[test]
    fn phase_sums_match_e2e_within_two_percent() {
        let tele = Telemetry::new(Clock::new(), TelemetryConfig::default());
        let r = run_anatomy(&test_params(), &tele);
        assert!(r.served > 0, "overloaded run still serves requests");
        assert!(!r.rows.is_empty(), "quantile rows produced");
        for row in &r.rows {
            let sum = row.phases.sum_ns();
            let err = sum.abs_diff(row.e2e_ns) as f64;
            assert!(
                err <= (row.e2e_ns as f64 * 0.02).max(1.0),
                "{}: phase sum {} vs e2e {} (err {:.1}%)",
                row.label,
                sum,
                row.e2e_ns,
                err / row.e2e_ns.max(1) as f64 * 100.0
            );
        }
        // The tail is ordered and each exemplar has a full timeline.
        for w in r.rows.windows(2) {
            assert!(w[0].e2e_ns <= w[1].e2e_ns, "quantiles ascend");
        }
        for row in &r.rows {
            let tl = r.timelines.get(&row.req_id).expect("timeline retained");
            assert!(
                tl.iter()
                    .any(|e| matches!(e.event, FlightEvent::ClientRecv { .. })),
                "timeline reaches the client"
            );
        }
    }

    #[test]
    fn histogram_exemplars_link_to_recorded_timelines() {
        let tele = Telemetry::new(Clock::new(), TelemetryConfig::default());
        let r = run_anatomy(&test_params(), &tele);
        assert!(!r.exemplars.is_empty(), "exemplars recorded");
        let p99_row = r.rows.iter().find(|row| row.label == "p99").unwrap();
        let hist = tele.histogram("kv.client.e2e_latency_ns");
        let ex = hist
            .exemplar_for(p99_row.e2e_ns)
            .expect("an exemplar covers the p99 magnitude");
        assert!(
            ex.value >= p99_row.e2e_ns,
            "exemplar is the bucket max at or above the quantile"
        );
    }

    #[test]
    fn artifact_json_is_valid_and_complete() {
        let tele = Telemetry::new(Clock::new(), TelemetryConfig::default());
        let params = test_params();
        let r = run_anatomy(&params, &tele);
        let json = to_json(&params, &r);
        let v = cf_telemetry::json::parse(&json).expect("valid JSON");
        let quantiles = v.get("quantiles").unwrap().as_arr().unwrap();
        assert_eq!(quantiles.len(), r.rows.len());
        for q in quantiles {
            let e2e = q.get("e2e_ns").unwrap().as_u64().unwrap();
            let sum = q.get("phase_sum_ns").unwrap().as_u64().unwrap();
            assert!(sum.abs_diff(e2e) as f64 <= (e2e as f64 * 0.02).max(1.0));
            assert!(
                !q.get("timeline").unwrap().as_arr().unwrap().is_empty(),
                "each quantile carries its exemplar timeline"
            );
        }
        assert!(!v.get("exemplars").unwrap().as_arr().unwrap().is_empty());
    }
}
