//! Figure 5: the measurement-study heatmap (§5.2).
//!
//! Percent difference in maximum throughput between all-scatter-gather and
//! all-copy serialization, for each (total payload size × number of
//! scatter-gather entries) cell on the YCSB workload. The paper's green
//! crossover line falls where individual fields reach about 512 bytes.

use cornflakes_core::SerializationConfig;

use cf_sim::stats::percent_diff;

use super::fig03::microbench_gbps;
use crate::tables::{pct, print_expectation, print_table};

/// One heatmap cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Total response payload bytes.
    pub total: usize,
    /// Number of buffers (scatter-gather entries when zero-copying).
    pub entries: usize,
    /// Per-field size.
    pub field_size: usize,
    /// Percent difference of all-SG vs all-copy max throughput.
    pub diff_pct: f64,
}

/// Runs the heatmap. Totals and entry counts follow the paper's axes,
/// skipping cells whose fields would be under 64 bytes.
pub fn run(num_keys: u64, requests: u64) -> Vec<Cell> {
    let totals = [256usize, 512, 1024, 2048, 4096, 8192];
    let entry_counts = [1usize, 2, 4, 8, 16, 32];
    let warmup = requests / 10;
    let mut cells = Vec::new();
    for &entries in &entry_counts {
        for &total in &totals {
            if total / entries < 64 || total % entries != 0 {
                continue;
            }
            let field_size = total / entries;
            let copy = microbench_gbps(
                SerializationConfig::always_copy(),
                false,
                num_keys,
                entries,
                field_size,
                requests,
                warmup,
            );
            let sg = microbench_gbps(
                SerializationConfig::always_zero_copy(),
                false,
                num_keys,
                entries,
                field_size,
                requests,
                warmup,
            );
            cells.push(Cell {
                total,
                entries,
                field_size,
                diff_pct: percent_diff(sg, copy),
            });
        }
    }

    // Render the heatmap: rows = entry counts, columns = totals.
    let mut rows = Vec::new();
    for &entries in &entry_counts {
        let mut row = vec![format!("{entries} entries")];
        for &total in &totals {
            let cell = cells
                .iter()
                .find(|c| c.entries == entries && c.total == total);
            row.push(match cell {
                Some(c) => pct(c.diff_pct),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("SG vs copy".to_string())
        .chain(totals.iter().map(|t| format!("{t}B")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 5: % max-throughput difference, scatter-gather vs copy",
        &header_refs,
        &rows,
    );

    // The crossover: smallest field size at which SG wins.
    let crossover = cells
        .iter()
        .filter(|c| c.diff_pct > 0.0)
        .map(|c| c.field_size)
        .min();
    print_expectation(
        "crossover field size",
        "about 512 bytes",
        &crossover.map_or("none".to_string(), |c| format!("{c} bytes")),
    );
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_crossover_at_512() {
        let cells = run(20_000, 400);
        for c in &cells {
            if c.field_size >= 512 {
                assert!(
                    c.diff_pct > 0.0,
                    "SG should win at {}B fields ({} entries): {:.1}%",
                    c.field_size,
                    c.entries,
                    c.diff_pct
                );
            }
            if c.field_size <= 128 {
                assert!(
                    c.diff_pct < 0.0,
                    "copy should win at {}B fields ({} entries): {:.1}%",
                    c.field_size,
                    c.entries,
                    c.diff_pct
                );
            }
        }
        // SG's advantage grows with payload size at fixed entry count.
        let one_entry: Vec<&Cell> = cells.iter().filter(|c| c.entries == 1).collect();
        for w in one_entry.windows(2) {
            assert!(
                w[1].diff_pct >= w[0].diff_pct - 2.0,
                "advantage should grow with size: {w:?}"
            );
        }
    }
}
