//! Figure 2: the motivating echo experiment (§2.2).
//!
//! A single-core echo server deserializes and reserializes a list with two
//! 2048-byte elements under seven approaches. The paper's anchors: no
//! serialization 77 Gbps, raw zero-copy 48 Gbps, one-copy 28 Gbps, two-copy
//! 23 Gbps, and the three libraries 13–15 Gbps.

use cf_net::{FrameMeta, UdpStack, HEADER_BYTES};
use cf_nic::link;
use cf_sim::queueing::{load_ladder, OpenLoopSim};
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::obj::serialize_to_vec;
use cornflakes_core::{CFBytes, SerializationConfig};

use cf_baselines::capnlite::CapnGetM;
use cf_baselines::flatlite::FlatGetM;
use cf_baselines::protolite::PGetM;
use cf_kv::echo::{EchoKind, EchoServer};
use cf_kv::msg_type;
use cf_kv::msgs::GetMsg;

use crate::tables::{f1, print_expectation, print_table};

/// An echo fixture: client stack + echo server over one wire.
pub struct EchoBench {
    /// Server machine simulation.
    pub server_sim: Sim,
    /// Client datapath (own machine).
    pub client: UdpStack,
    /// The echo server.
    pub server: EchoServer,
}

impl EchoBench {
    /// Creates a fixture for one echo variant.
    pub fn new(kind: EchoKind) -> Self {
        Self::with_profile(MachineProfile::cloudlab_c6525(), kind)
    }

    /// Creates a fixture on an explicit profile.
    pub fn with_profile(profile: MachineProfile, kind: EchoKind) -> Self {
        let server_sim = Sim::new(profile);
        let (cp, sp) = link();
        let client = UdpStack::new(
            Sim::new(MachineProfile::cloudlab_c6525()),
            cp,
            4000,
            SerializationConfig::hybrid(),
        );
        let server_stack =
            UdpStack::new(server_sim.clone(), sp, 9000, SerializationConfig::hybrid());
        EchoBench {
            server_sim,
            client,
            server: EchoServer::new(server_stack, kind),
        }
    }

    /// Builds the request payload for this variant (each library speaks its
    /// own wire format; manual variants speak Cornflakes's).
    pub fn build_payload(&self, fields: &[Vec<u8>]) -> Vec<u8> {
        let sim = self.client.sim().clone();
        match self.server.kind {
            EchoKind::Protobuf => {
                let mut m = PGetM::new();
                for f in fields {
                    m.add_val(&sim, f);
                }
                m.encode(&sim, 0x10_0000)
            }
            EchoKind::FlatBuffers => {
                let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
                FlatGetM::encode(&sim, None, &[], &refs)
            }
            EchoKind::CapnProto => {
                let mut m = CapnGetM::new();
                for f in fields {
                    m.add_val(&sim, f);
                }
                CapnGetM::frame(&m.finish(&sim))
            }
            _ => {
                let mut m = GetMsg::new();
                let ctx = self.client.ctx();
                for f in fields {
                    m.get_mut_vals().append(CFBytes::new(ctx, f));
                }
                serialize_to_vec(&m)
            }
        }
    }

    /// One request round trip; returns the response payload size.
    pub fn echo_once(&mut self, payload: &[u8], seq: u64) -> u64 {
        let mut tx = self.client.alloc_tx(payload.len()).expect("client tx");
        tx.write_at(HEADER_BYTES, payload);
        let hdr = self.client.header_to(
            9000,
            FrameMeta {
                msg_type: msg_type::ECHO,
                flags: 0,
                req_id: seq as u32,
            },
        );
        self.client
            .send_built(hdr, tx, payload.len())
            .expect("send");
        self.server.poll();
        self.client
            .recv_packet()
            .map(|p| p.payload.len() as u64)
            .unwrap_or(0)
    }
}

/// One variant's results.
#[derive(Clone, Debug)]
pub struct VariantResult {
    /// The variant.
    pub kind: EchoKind,
    /// Maximum achieved payload throughput (Gbps).
    pub max_gbps: f64,
    /// (offered krps, achieved krps, p99 µs) curve points.
    pub curve: Vec<(f64, f64, f64)>,
}

/// Runs Figure 2 and returns per-variant results (also printed).
pub fn run(duration_ns: u64) -> Vec<VariantResult> {
    let fields = vec![vec![0x5Au8; 2048], vec![0xA5u8; 2048]];
    let mut results = Vec::new();
    for kind in EchoKind::figure2() {
        let mut bench = EchoBench::new(kind);
        // Capacity probe: closed-loop saturation.
        let payload = bench.build_payload(&fields);
        bench.server_sim.reset();
        let ol = OpenLoopSim {
            clock: bench.server_sim.clock(),
            seed: 2,
            one_way_wire_ns: 5_000,
            duration_ns,
            warmup_requests: 500,
        };
        let sat = {
            let b = &mut bench;
            ol.run_saturated(4_000, |seq| b.echo_once(&payload, seq))
        };
        let cap_rps = sat.achieved_rps;
        // Open-loop sweep up to capacity.
        let loads = load_ladder(cap_rps * 0.3, cap_rps * 0.99, 6);
        let mut curve = Vec::new();
        let mut max_gbps: f64 = sat.gbps();
        for load in loads {
            bench.server_sim.reset();
            let p = {
                let b = &mut bench;
                ol.run(load, |seq| b.echo_once(&payload, seq))
            };
            max_gbps = max_gbps.max(p.gbps());
            curve.push((
                p.offered_rps / 1e3,
                p.achieved_rps / 1e3,
                p.latency.p99() as f64 / 1e3,
            ));
        }
        results.push(VariantResult {
            kind,
            max_gbps,
            curve,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.kind.name().to_string(), f1(r.max_gbps)];
            let last = r.curve.last().expect("nonempty curve");
            row.push(f1(last.1));
            row.push(f1(last.2));
            row
        })
        .collect();
    print_table(
        "Figure 2: echo server, 2 x 2048 B fields (per variant)",
        &["Variant", "Max Gbps", "Achieved krps", "p99 us"],
        &rows,
    );
    print_expectation(
        "ordering",
        "no-ser 77 > raw zero-copy 48 > one-copy 28 > two-copy 23 > libraries 13-15 Gbps",
        &results
            .iter()
            .map(|r| format!("{} {:.0}", r.kind.name(), r.max_gbps))
            .collect::<Vec<_>>()
            .join(" | "),
    );
    // Throughput-latency curves for the figure itself.
    for r in &results {
        println!("  curve [{}]:", r.kind.name());
        for (off, ach, p99) in &r.curve {
            println!("    offered {off:8.1} krps  achieved {ach:8.1} krps  p99 {p99:7.1} us");
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_sim::stats::gbps;

    #[test]
    fn echo_bench_round_trips() {
        let mut b = EchoBench::new(EchoKind::Cornflakes);
        let fields = vec![vec![1u8; 2048], vec![2u8; 2048]];
        let payload = b.build_payload(&fields);
        let got = b.echo_once(&payload, 1);
        assert!(got >= 4096, "echoed payload should include both fields");
    }

    #[test]
    fn figure2_shape_holds_scaled_down() {
        let results = run(2_000_000); // 2 ms window
        let g = |k: EchoKind| {
            results
                .iter()
                .find(|r| r.kind == k)
                .expect("variant present")
                .max_gbps
        };
        assert!(g(EchoKind::NoSerialization) > g(EchoKind::ZeroCopyRaw));
        assert!(g(EchoKind::ZeroCopyRaw) > g(EchoKind::OneCopy));
        assert!(g(EchoKind::OneCopy) > g(EchoKind::TwoCopy));
        for lib in [
            EchoKind::Protobuf,
            EchoKind::FlatBuffers,
            EchoKind::CapnProto,
        ] {
            assert!(g(EchoKind::TwoCopy) > g(lib), "{lib:?}");
        }
        // Absolute anchors within a loose band of the paper's numbers.
        assert!((70.0..85.0).contains(&g(EchoKind::NoSerialization)));
        assert!((40.0..56.0).contains(&g(EchoKind::ZeroCopyRaw)));
        assert!((24.0..32.0).contains(&g(EchoKind::OneCopy)));
        assert!((19.0..27.0).contains(&g(EchoKind::TwoCopy)));
        let _ = gbps(1, 1);
    }
}
