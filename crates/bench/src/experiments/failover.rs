//! Fault-driven failover: closed-loop KV traffic against a replicated
//! cluster, kill a node mid-run, and measure the availability dip and
//! the time for goodput to recover.
//!
//! The fixture is the `cf-cluster` stack end to end: N simulated hosts
//! behind a [`cf_nic::SimSwitch`], consistent-hash placement with R-way
//! replication, probe-based failure detection, and a client that fails
//! over through per-node circuit breakers. One closed-loop client runs
//! a YCSB-keyed PUT/GET mix; completions are bucketed into fixed
//! virtual-time windows. At [`FailoverParams::kill_window`] the victim
//! node is killed; at [`FailoverParams::revive_window`] it rejoins and
//! catch-up replay brings it back in sync.
//!
//! Reported:
//! - **baseline** goodput (mean completions/window before the kill),
//! - the **dip** (worst post-kill window),
//! - **detection time** (kill → every survivor marks the victim down),
//! - **recovery time** (kill → first window back at
//!   [`FailoverParams::recovery_frac`] of baseline).
//!
//! Emits `failover.json` with the full window series.

use std::fmt::Write as _;

use cf_cluster::{Cluster, ClusterConfig};
use cf_kv::client::RetryConfig;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::Telemetry;
use cf_workloads::{key_string, Ycsb, YcsbConfig};

use crate::artifacts::{write_json_artifact, write_metrics_artifact};
use crate::tables::{f1, print_table};

/// Experiment knobs; [`FailoverParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct FailoverParams {
    /// Cluster size (hosts behind the switch).
    pub nodes: usize,
    /// Replication factor R (PUTs ack after R live replicas apply).
    pub replication: usize,
    /// Distinct keys, preloaded on every replica.
    pub num_keys: u64,
    /// Value size per key.
    pub value_bytes: usize,
    /// Goodput bucket width in virtual nanoseconds.
    pub window_ns: u64,
    /// Windows discarded from the front before computing the baseline.
    pub warmup_windows: usize,
    /// Window index at whose start the victim is killed.
    pub kill_window: usize,
    /// Window index at whose start the victim rejoins.
    pub revive_window: usize,
    /// Total measured windows.
    pub total_windows: usize,
    /// Which node dies.
    pub victim: u8,
    /// Recovery threshold as a fraction of baseline goodput.
    pub recovery_frac: f64,
    /// PUT probability in percent (the rest are GETs).
    pub put_pct: u32,
    /// Workload / retry-jitter seed.
    pub seed: u64,
}

impl FailoverParams {
    /// Full run: 3 nodes, R=3, 60 windows of 250 µs (15 ms virtual).
    pub fn full() -> Self {
        FailoverParams {
            nodes: 3,
            replication: 3,
            num_keys: 16,
            value_bytes: 256,
            window_ns: 250_000,
            warmup_windows: 2,
            kill_window: 15,
            revive_window: 35,
            total_windows: 60,
            victim: 1,
            recovery_frac: 0.9,
            put_pct: 30,
            seed: 0xF417_0E75,
        }
    }

    /// CI smoke preset: the same shape, a third of the timeline.
    pub fn quick() -> Self {
        FailoverParams {
            num_keys: 8,
            value_bytes: 128,
            kill_window: 6,
            revive_window: 18,
            total_windows: 26,
            ..FailoverParams::full()
        }
    }
}

/// One goodput bucket.
#[derive(Clone, Debug)]
pub struct Window {
    /// Window start, relative to measurement start.
    pub start_ns: u64,
    /// Responses decoded inside the window.
    pub served: u64,
    /// Request timeouts expiring inside the window.
    pub timeouts: u64,
}

/// Everything the run measured.
#[derive(Clone, Debug)]
pub struct FailoverResult {
    pub windows: Vec<Window>,
    /// Mean served/window over the pre-kill (post-warmup) windows.
    pub baseline: f64,
    /// Worst served/window at or after the kill.
    pub dip: u64,
    /// Virtual ns from the kill until the last survivor marked the
    /// victim down.
    pub detection_ns: Option<u64>,
    /// Virtual ns from the kill until the end of the first window whose
    /// goodput is back at `recovery_frac * baseline`.
    pub recovered_within_ns: Option<u64>,
    pub answered: u64,
    pub timeouts: u64,
    pub failovers: u64,
    pub catchup_replays: u64,
    pub puts_applied: u64,
}

fn retry_cfg() -> RetryConfig {
    RetryConfig {
        timeout_ns: 120_000,
        max_retries: 6,
        max_backoff_ns: 500_000,
        jitter_seed: None, // seeded per-client below
    }
}

/// Drives the closed-loop workload and measures the window series.
pub fn run_failover(params: &FailoverParams, tele: &Telemetry) -> FailoverResult {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let mut cluster = Cluster::new(
        sim,
        ClusterConfig {
            nodes: params.nodes,
            replication: params.replication,
            ..ClusterConfig::default()
        },
    );
    cluster.set_telemetry(tele);
    let mut client = cluster.client();
    client.set_telemetry(tele);
    client.enable_retries_seeded(params.seed, retry_cfg());

    let keys: Vec<Vec<u8>> = (0..params.num_keys)
        .map(|i| key_string(i).into_bytes())
        .collect();
    for key in &keys {
        cluster.preload(key, &[params.value_bytes]);
    }
    // Let probes establish a steady state before measuring.
    for _ in 0..6 {
        cluster.poll();
        cluster.sim().clock().advance(60_000);
    }

    let mut ycsb = Ycsb::new(
        YcsbConfig {
            num_keys: params.num_keys,
            theta: 0.9,
            value_segments: 1,
            segment_size: params.value_bytes,
        },
        params.seed,
    );
    let mut op_rng = cf_sim::rng::SplitMix64::new(params.seed ^ 0xA5A5);

    let t0 = cluster.sim().now();
    let end = t0 + params.window_ns * params.total_windows as u64;
    let kill_at = t0 + params.window_ns * params.kill_window as u64;
    let revive_at = t0 + params.window_ns * params.revive_window as u64;
    let mut windows: Vec<Window> = (0..params.total_windows)
        .map(|i| Window {
            start_ns: params.window_ns * i as u64,
            served: 0,
            timeouts: 0,
        })
        .collect();

    let mut outstanding: Option<u32> = None;
    let mut answered = 0u64;
    let mut timeouts = 0u64;
    let mut killed = false;
    let mut revived = false;
    let mut kill_ts = 0u64;
    let mut detection_ns = None;
    let step = 10_000u64;

    while cluster.sim().now() < end {
        let now = cluster.sim().now();
        if !killed && now >= kill_at {
            cluster.kill(params.victim);
            killed = true;
            kill_ts = now;
        }
        if killed && !revived && now >= revive_at {
            cluster.revive(params.victim);
            revived = true;
        }
        if outstanding.is_none() {
            let key = &keys[(ycsb.next_key() % params.num_keys) as usize];
            let id = if op_rng.next_u64() % 100 < u64::from(params.put_pct) {
                let fill = (answered + timeouts) as u8 ^ 0x5A;
                client.send_put(key, &vec![fill; params.value_bytes])
            } else {
                client.send_get(key)
            };
            outstanding = Some(id);
        }
        cluster.poll();
        if killed && detection_ns.is_none() {
            let all_down = cluster
                .nodes
                .iter()
                .filter(|n| n.id != params.victim)
                .all(|n| !n.peer_alive(params.victim));
            if all_down {
                detection_ns = Some(cluster.sim().now() - kill_ts);
            }
        }
        let bucket =
            |ts: u64| (((ts - t0) / params.window_ns) as usize).min(params.total_windows - 1);
        if client.recv_response().is_some() {
            outstanding = None;
            answered += 1;
            windows[bucket(cluster.sim().now())].served += 1;
        }
        cluster.sim().clock().advance(step);
        if let Some(id) = outstanding {
            if client.poll_timers().contains(&id) {
                outstanding = None;
                timeouts += 1;
                windows[bucket(cluster.sim().now())].timeouts += 1;
            }
        }
    }
    // Conclude the in-flight request so nothing is left pending.
    if let Some(id) = outstanding {
        for _ in 0..400 {
            cluster.poll();
            if client.recv_response().is_some() {
                answered += 1;
                break;
            }
            cluster.sim().clock().advance(step);
            if client.poll_timers().contains(&id) {
                timeouts += 1;
                break;
            }
        }
    }

    let pre: &[Window] = &windows[params.warmup_windows..params.kill_window];
    let baseline = pre.iter().map(|w| w.served).sum::<u64>() as f64 / pre.len().max(1) as f64;
    let post = &windows[params.kill_window..];
    let dip = post.iter().map(|w| w.served).min().unwrap_or(0);
    let threshold = params.recovery_frac * baseline;
    let recovered_within_ns = post
        .iter()
        .position(|w| w.served as f64 >= threshold)
        .map(|i| (i as u64 + 1) * params.window_ns);

    FailoverResult {
        windows,
        baseline,
        dip,
        detection_ns,
        recovered_within_ns,
        answered,
        timeouts,
        failovers: client.failovers(),
        catchup_replays: cluster.nodes.iter().map(|n| n.catchup_replays()).sum(),
        puts_applied: cluster.total_puts_applied(),
    }
}

/// Hand-built JSON artifact body (`failover.json`).
pub fn to_json(params: &FailoverParams, r: &FailoverResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"failover\",");
    let _ = writeln!(out, "  \"nodes\": {},", params.nodes);
    let _ = writeln!(out, "  \"replication\": {},", params.replication);
    let _ = writeln!(out, "  \"victim\": {},", params.victim);
    let _ = writeln!(out, "  \"window_ns\": {},", params.window_ns);
    let _ = writeln!(out, "  \"kill_window\": {},", params.kill_window);
    let _ = writeln!(out, "  \"revive_window\": {},", params.revive_window);
    let _ = writeln!(out, "  \"recovery_frac\": {:.2},", params.recovery_frac);
    let _ = writeln!(out, "  \"baseline_goodput_per_window\": {:.2},", r.baseline);
    let _ = writeln!(out, "  \"dip_goodput_per_window\": {},", r.dip);
    let _ = writeln!(
        out,
        "  \"detection_ns\": {},",
        r.detection_ns.map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(
        out,
        "  \"recovered_within_ns\": {},",
        r.recovered_within_ns
            .map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(out, "  \"answered\": {},", r.answered);
    let _ = writeln!(out, "  \"timeouts\": {},", r.timeouts);
    let _ = writeln!(out, "  \"failovers\": {},", r.failovers);
    let _ = writeln!(out, "  \"catchup_replays\": {},", r.catchup_replays);
    let _ = writeln!(out, "  \"puts_applied\": {},", r.puts_applied);
    out.push_str("  \"windows\": [\n");
    for (i, w) in r.windows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"idx\": {}, \"start_ns\": {}, \"served\": {}, \"timeouts\": {}}}",
            i, w.start_ns, w.served, w.timeouts
        );
        out.push_str(if i + 1 < r.windows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the experiment, prints the window series, writes artifacts.
pub fn run(params: &FailoverParams) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let tele = Telemetry::attach(&sim);
    let r = run_failover(params, &tele);

    let phase = |i: usize| {
        if i < params.kill_window {
            "up"
        } else if i < params.revive_window {
            "victim down"
        } else {
            "rejoined"
        }
    };
    let rows: Vec<Vec<String>> = r
        .windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            vec![
                i.to_string(),
                phase(i).to_string(),
                w.served.to_string(),
                w.timeouts.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Failover: {} nodes, R={}, kill node {} at window {}",
            params.nodes, params.replication, params.victim, params.kill_window
        ),
        &["window", "phase", "served", "timeouts"],
        &rows,
    );
    println!("  baseline goodput/window : {}", f1(r.baseline));
    println!("  worst post-kill window  : {}", r.dip);
    println!(
        "  detection (all survivors): {}",
        r.detection_ns
            .map_or("never".into(), |v| format!("{} ns", v))
    );
    println!(
        "  recovered to >= {:.0}%    : {}",
        params.recovery_frac * 100.0,
        r.recovered_within_ns
            .map_or("never".into(), |v| format!("within {} ns of the kill", v))
    );
    println!(
        "  answered/timeouts {} / {}, failovers {}, catch-up replays {}",
        r.answered, r.timeouts, r.failovers, r.catchup_replays
    );

    match write_json_artifact("failover", &to_json(params, &r)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => eprintln!("  artifact write failed: {e}"),
    }
    if let Err(e) = write_metrics_artifact("failover", &tele) {
        eprintln!("  metrics artifact write failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_recovers_after_node_kill() {
        let params = FailoverParams::quick();
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let tele = Telemetry::attach(&sim);
        let r = run_failover(&params, &tele);
        assert!(r.baseline > 0.0, "pre-kill traffic flows");
        assert!(r.answered > 0);
        assert!(
            r.detection_ns.is_some(),
            "survivors detect the dead node via probe timeouts"
        );
        let rec = r
            .recovered_within_ns
            .expect("goodput recovers to >=90% of pre-kill baseline");
        assert!(
            rec <= (params.revive_window - params.kill_window) as u64 * params.window_ns,
            "recovery comes from failover (while the victim is still dead), \
             not from the revive: {rec} ns"
        );
        assert!(r.failovers >= 1, "the client failed over off the victim");
    }

    #[test]
    fn artifact_json_is_valid_and_complete() {
        let params = FailoverParams::quick();
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let tele = Telemetry::attach(&sim);
        let r = run_failover(&params, &tele);
        let json = to_json(&params, &r);
        let doc = cf_telemetry::json::parse(&json).expect("artifact parses");
        for field in [
            "experiment",
            "replication",
            "baseline_goodput_per_window",
            "dip_goodput_per_window",
            "detection_ns",
            "recovered_within_ns",
            "failovers",
            "windows",
        ] {
            assert!(doc.get(field).is_some(), "missing field {field}");
        }
        let windows = doc.get("windows").unwrap().as_arr().expect("window series");
        assert_eq!(windows.len(), params.total_windows);
        let served: u64 = windows
            .iter()
            .map(|w| w.get("served").unwrap().as_u64().unwrap())
            .sum();
        assert!(served > 0, "the series records completions");
    }
}
