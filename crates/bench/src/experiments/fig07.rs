//! Figure 7: the Twitter cache trace on the custom KV store (§6.2.1).
//!
//! About 32 % of reads touch objects of 512 B or more and 8 % of requests
//! are puts. Paper result: Cornflakes achieves 15.4 % higher throughput
//! than Protobuf at a ~53 µs p99 SLO, and beats all other baselines.

use cf_sim::queueing::{load_ladder, OpenLoopSim, SweepResult};
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::client::{client_server_pair, KvClient};
use cf_kv::server::{KvServer, SerKind};
use cf_workloads::{key_string, TwitterConfig, TwitterOp, TwitterTrace};

use crate::harness::large_pool;
use crate::tables::{f1, pct, print_expectation, print_table};

/// Builds a Twitter-workload fixture for one system.
pub fn twitter_fixture(
    kind: SerKind,
    config: SerializationConfig,
    num_keys: u64,
) -> (Sim, KvClient, KvServer) {
    let server_sim = Sim::new(MachineProfile::microbench());
    let (client, mut server) = client_server_pair(server_sim.clone(), kind, config, large_pool());
    for id in 0..num_keys {
        let size = TwitterTrace::value_size(id);
        server
            .store
            .preload(server.stack.ctx(), key_string(id).as_bytes(), &[size])
            .expect("pool sized for Twitter workload");
    }
    (server_sim, client, server)
}

/// Drives one Twitter-trace request (get or put) and returns the response
/// payload size.
pub fn drive_twitter(
    client: &mut KvClient,
    server: &mut KvServer,
    trace: &mut TwitterTrace,
    put_scratch: &[u8],
) -> u64 {
    match trace.next() {
        TwitterOp::Get { key } => {
            let k = key_string(key);
            client.send_get(&[k.as_bytes()]);
        }
        TwitterOp::Put { key, size } => {
            let k = key_string(key);
            client.send_put(k.as_bytes(), &put_scratch[..size]);
        }
    }
    server.poll();
    client
        .recv_response()
        .map(|r| r.payload_bytes as u64)
        .unwrap_or(0)
}

/// Runs the Figure 7 sweep for one system; returns the sweep.
pub fn sweep_twitter(
    kind: SerKind,
    config: SerializationConfig,
    num_keys: u64,
    duration_ns: u64,
) -> SweepResult {
    let (server_sim, mut client, mut server) = twitter_fixture(kind, config, num_keys);
    let mut trace = TwitterTrace::new(
        TwitterConfig {
            num_keys,
            ..TwitterConfig::default()
        },
        0x7A17,
    );
    let put_scratch = vec![0xB0u8; 8192];
    let ol = OpenLoopSim {
        clock: server_sim.clock(),
        seed: 7,
        one_way_wire_ns: 5_000,
        duration_ns,
        warmup_requests: 2_000,
    };
    let cap = {
        let c = &mut client;
        let s = &mut server;
        let t = &mut trace;
        ol.run_saturated(3_000, |_| drive_twitter(c, s, t, &put_scratch))
            .achieved_rps
    };
    let loads = load_ladder(cap * 0.4, cap * 0.99, 6);
    let points = loads
        .iter()
        .map(|&load| {
            server_sim.reset();
            let c = &mut client;
            let s = &mut server;
            let t = &mut trace;
            ol.run(load, |_| drive_twitter(c, s, t, &put_scratch))
        })
        .collect();
    SweepResult { points }
}

/// Runs Figure 7 for all systems, printing curves and the SLO comparison.
pub fn run(num_keys: u64, duration_ns: u64, slo_ns: u64) -> Vec<(SerKind, SweepResult)> {
    let mut results = Vec::new();
    for kind in SerKind::all() {
        let sweep = sweep_twitter(kind, SerializationConfig::hybrid(), num_keys, duration_ns);
        results.push((kind, sweep));
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(kind, sweep)| {
            vec![
                kind.name().to_string(),
                f1(sweep.max_achieved_rps() / 1e3),
                f1(sweep.rps_at_p99_slo(slo_ns) / 1e3),
            ]
        })
        .collect();
    print_table(
        "Figure 7: Twitter cache trace (custom KV store)",
        &[
            "System",
            "Max krps",
            &format!("krps @ p99<={}us", slo_ns / 1000),
        ],
        &rows,
    );
    let cf = results[0].1.rps_at_p99_slo(slo_ns);
    let proto = results[1].1.rps_at_p99_slo(slo_ns);
    print_expectation(
        "Cornflakes vs Protobuf at the SLO",
        "+15.4%",
        &pct((cf - proto) / proto * 100.0),
    );
    for (kind, sweep) in &results {
        println!("  curve [{}]:", kind.name());
        for p in &sweep.points {
            println!(
                "    offered {:8.1} krps  achieved {:8.1} krps  p99 {:6.1} us{}",
                p.offered_rps / 1e3,
                p.achieved_rps / 1e3,
                p.latency.p99() as f64 / 1e3,
                if p.is_stable() { "" } else { "  (unstable)" }
            );
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cornflakes_beats_baselines_on_twitter() {
        let mut caps = Vec::new();
        for kind in SerKind::all() {
            let sweep = sweep_twitter(kind, SerializationConfig::hybrid(), 10_000, 3_000_000);
            caps.push((kind, sweep.max_achieved_rps()));
        }
        let cf = caps[0].1;
        for &(kind, cap) in &caps[1..] {
            assert!(cf > cap, "Cornflakes {cf} should beat {kind:?} {cap}");
        }
        // The margin over Protobuf should be visible but not absurd
        // (paper: 15.4 % at the SLO).
        let proto = caps[1].1;
        let gain = (cf - proto) / proto * 100.0;
        assert!(
            (2.0..60.0).contains(&gain),
            "Cornflakes vs Protobuf gain {gain:.1}% out of plausible range"
        );
    }
}
