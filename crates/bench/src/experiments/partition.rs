//! Split-brain partition: consistency vs availability under the two
//! cluster read modes.
//!
//! The fixture is the `cf-cluster` stack end to end, driven once per
//! [`cf_cluster::ReadMode`] with identical parameters and seeds. The
//! fault schedule has three acts:
//!
//! 1. at [`PartitionParams::partition_window`] the victim node is
//!    split from its peers (split-brain): the majority keeps taking
//!    writes, the victim falls behind;
//! 2. at [`PartitionParams::isolate_window`] the client is also cut
//!    off from the majority, so the stale victim is the only node it
//!    can reach;
//! 3. at [`PartitionParams::heal_window`] every cut heals and
//!    catch-up replay brings the victim back in sync.
//!
//! Each completed GET is classified against the highest version the
//! client itself saw cleanly acknowledged for that key: a clean GET
//! answer with a lower version is a **stale read**. `ReadMode::Any`
//! keeps serving from the victim through act 2 (available, stale);
//! `ReadMode::Quorum` refuses — majority fan-outs cannot complete, so
//! goodput drops to zero but no stale value is ever returned.
//!
//! Emits `partition.json` with per-window goodput and stale-read-rate
//! series for both modes (committed as `BENCH_partition.json`).

use std::fmt::Write as _;

use cf_cluster::{Cluster, ClusterConfig, ReadMode};
use cf_kv::client::RetryConfig;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::Telemetry;
use cf_workloads::{key_string, Ycsb, YcsbConfig};

use crate::artifacts::{write_json_artifact, write_metrics_artifact};
use crate::tables::{f1, print_table};

/// Experiment knobs; [`PartitionParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct PartitionParams {
    /// Cluster size (hosts behind the switch).
    pub nodes: usize,
    /// Replication factor R.
    pub replication: usize,
    /// Distinct keys, preloaded on every replica.
    pub num_keys: u64,
    /// Value size per key.
    pub value_bytes: usize,
    /// Goodput bucket width in virtual nanoseconds.
    pub window_ns: u64,
    /// Windows discarded from the front before computing the baseline.
    pub warmup_windows: usize,
    /// Window index at whose start the victim is split from its peers.
    pub partition_window: usize,
    /// Window index at whose start the client loses the majority too.
    pub isolate_window: usize,
    /// Window index at whose start every cut heals.
    pub heal_window: usize,
    /// Total measured windows.
    pub total_windows: usize,
    /// Which node ends up on the minority side.
    pub victim: u8,
    /// PUT probability in percent (the rest are GETs).
    pub put_pct: u32,
    /// Workload / retry-jitter seed.
    pub seed: u64,
}

impl PartitionParams {
    /// Full run: 3 nodes, R=3, 60 windows of 250 µs (15 ms virtual).
    pub fn full() -> Self {
        PartitionParams {
            nodes: 3,
            replication: 3,
            num_keys: 16,
            value_bytes: 256,
            window_ns: 250_000,
            warmup_windows: 2,
            partition_window: 10,
            isolate_window: 20,
            heal_window: 40,
            total_windows: 60,
            victim: 1,
            put_pct: 30,
            seed: 0x9A27_11E5,
        }
    }

    /// CI smoke preset: the same shape, a shorter timeline.
    pub fn quick() -> Self {
        PartitionParams {
            num_keys: 8,
            value_bytes: 128,
            partition_window: 5,
            isolate_window: 10,
            heal_window: 20,
            total_windows: 28,
            ..PartitionParams::full()
        }
    }
}

/// One goodput bucket.
#[derive(Clone, Debug)]
pub struct Window {
    /// Window start, relative to measurement start.
    pub start_ns: u64,
    /// Clean (flag-free) responses decoded inside the window.
    pub served: u64,
    /// Request timeouts expiring inside the window.
    pub timeouts: u64,
    /// Clean GET answers whose version trails the newest clean-acked
    /// write the client has seen for that key.
    pub stale: u64,
}

impl Window {
    /// Stale reads as a fraction of clean completions in this window.
    pub fn stale_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.stale as f64 / self.served as f64
        }
    }
}

/// Everything one mode's run measured.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    pub mode: ReadMode,
    pub windows: Vec<Window>,
    /// Mean served/window over the pre-partition (post-warmup) windows.
    pub baseline: f64,
    /// Clean completions over the whole run.
    pub clean: u64,
    /// Answers carrying SHED (minority-write refusals) or DEGRADED.
    pub flagged: u64,
    pub timeouts: u64,
    /// Total stale reads (sum of the window series).
    pub stale_reads: u64,
    pub failovers: u64,
    pub quorum_reads: u64,
    pub read_repairs: u64,
    pub partition_suspects: u64,
    pub puts_applied: u64,
}

fn retry_cfg() -> RetryConfig {
    RetryConfig {
        timeout_ns: 120_000,
        max_retries: 6,
        max_backoff_ns: 500_000,
        jitter_seed: None, // seeded per-client below
    }
}

/// Drives the closed-loop workload under one read mode.
pub fn run_partition(
    params: &PartitionParams,
    mode: ReadMode,
    tele: &Telemetry,
) -> PartitionResult {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let mut cluster = Cluster::new(
        sim,
        ClusterConfig {
            nodes: params.nodes,
            replication: params.replication,
            ..ClusterConfig::default()
        },
    );
    cluster.set_telemetry(tele);
    let mut client = cluster.client();
    client.set_telemetry(tele);
    client.set_read_mode(mode);
    client.enable_retries_seeded(params.seed, retry_cfg());
    let client_host = params.nodes as u8;
    let peers: Vec<u8> = (0..params.nodes as u8)
        .filter(|&n| n != params.victim)
        .collect();

    let keys: Vec<Vec<u8>> = (0..params.num_keys)
        .map(|i| key_string(i).into_bytes())
        .collect();
    for key in &keys {
        cluster.preload(key, &[params.value_bytes]);
    }
    // Let probes establish a steady state before measuring.
    for _ in 0..6 {
        cluster.poll();
        cluster.sim().clock().advance(60_000);
    }

    let mut ycsb = Ycsb::new(
        YcsbConfig {
            num_keys: params.num_keys,
            theta: 0.9,
            value_segments: 1,
            segment_size: params.value_bytes,
        },
        params.seed,
    );
    let mut op_rng = cf_sim::rng::SplitMix64::new(params.seed ^ 0xA5A5);

    let t0 = cluster.sim().now();
    let end = t0 + params.window_ns * params.total_windows as u64;
    let split_at = t0 + params.window_ns * params.partition_window as u64;
    let isolate_at = t0 + params.window_ns * params.isolate_window as u64;
    let heal_at = t0 + params.window_ns * params.heal_window as u64;
    let mut windows: Vec<Window> = (0..params.total_windows)
        .map(|i| Window {
            start_ns: params.window_ns * i as u64,
            served: 0,
            timeouts: 0,
            stale: 0,
        })
        .collect();

    // Highest version the client saw cleanly acked per key; a clean GET
    // below this is a stale read by the client's own observations.
    let mut max_acked = vec![0u64; params.num_keys as usize];
    // (request id, key index, is_put) of the in-flight op.
    let mut outstanding: Option<(u32, usize, bool)> = None;
    let mut tally = Tally::default();
    let mut timeouts = 0u64;
    let (mut split, mut isolated, mut healed) = (false, false, false);
    let step = 10_000u64;
    let bucket = |ts: u64| (((ts - t0) / params.window_ns) as usize).min(params.total_windows - 1);

    #[derive(Default)]
    struct Tally {
        clean: u64,
        flagged: u64,
        stale_reads: u64,
    }

    impl Tally {
        fn settle(
            &mut self,
            resp: &cf_kv::client::Response,
            key_idx: usize,
            is_put: bool,
            window: &mut Window,
            max_acked: &mut [u64],
        ) {
            if resp.flags != 0 {
                self.flagged += 1;
                return;
            }
            self.clean += 1;
            window.served += 1;
            if is_put {
                max_acked[key_idx] = max_acked[key_idx].max(resp.version);
            } else if resp.version < max_acked[key_idx] {
                self.stale_reads += 1;
                window.stale += 1;
            }
        }
    }

    while cluster.sim().now() < end {
        let now = cluster.sim().now();
        if !split && now >= split_at {
            for &p in &peers {
                cluster.partition(params.victim, p);
            }
            split = true;
        }
        if split && !isolated && now >= isolate_at {
            for &p in &peers {
                cluster.partition(client_host, p);
            }
            isolated = true;
        }
        if isolated && !healed && now >= heal_at {
            for &p in &peers {
                cluster.heal(params.victim, p);
                cluster.heal(client_host, p);
            }
            healed = true;
        }
        if outstanding.is_none() {
            let key_idx = (ycsb.next_key() % params.num_keys) as usize;
            let is_put = op_rng.next_u64() % 100 < u64::from(params.put_pct);
            let id = if is_put {
                let fill = (tally.clean + tally.flagged + timeouts) as u8 ^ 0x5A;
                client.send_put(&keys[key_idx], &vec![fill; params.value_bytes])
            } else {
                client.send_get(&keys[key_idx])
            };
            outstanding = Some((id, key_idx, is_put));
        }
        cluster.poll();
        if let Some((_, key_idx, is_put)) = outstanding {
            if let Some(resp) = client.recv_response() {
                outstanding = None;
                let b = bucket(cluster.sim().now());
                tally.settle(&resp, key_idx, is_put, &mut windows[b], &mut max_acked);
            }
        }
        cluster.sim().clock().advance(step);
        if let Some((id, _, _)) = outstanding {
            if client.poll_timers().contains(&id) {
                outstanding = None;
                timeouts += 1;
                windows[bucket(cluster.sim().now())].timeouts += 1;
            }
        }
    }
    // Conclude the in-flight request so nothing is left pending.
    if let Some((id, key_idx, is_put)) = outstanding {
        for _ in 0..400 {
            cluster.poll();
            if let Some(resp) = client.recv_response() {
                let b = bucket(cluster.sim().now());
                tally.settle(&resp, key_idx, is_put, &mut windows[b], &mut max_acked);
                break;
            }
            cluster.sim().clock().advance(step);
            if client.poll_timers().contains(&id) {
                timeouts += 1;
                break;
            }
        }
    }

    let pre: &[Window] = &windows[params.warmup_windows..params.partition_window];
    let baseline = pre.iter().map(|w| w.served).sum::<u64>() as f64 / pre.len().max(1) as f64;

    PartitionResult {
        mode,
        windows,
        baseline,
        clean: tally.clean,
        flagged: tally.flagged,
        timeouts,
        stale_reads: tally.stale_reads,
        failovers: client.failovers(),
        quorum_reads: client.quorum_reads(),
        read_repairs: client.read_repairs(),
        partition_suspects: client.partition_suspects(),
        puts_applied: cluster.total_puts_applied(),
    }
}

fn mode_name(mode: ReadMode) -> &'static str {
    match mode {
        ReadMode::Any => "any",
        ReadMode::Quorum => "quorum",
    }
}

/// Hand-built JSON artifact body (`partition.json`): both modes' window
/// series side by side.
pub fn to_json(params: &PartitionParams, results: &[PartitionResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"partition\",");
    let _ = writeln!(out, "  \"nodes\": {},", params.nodes);
    let _ = writeln!(out, "  \"replication\": {},", params.replication);
    let _ = writeln!(out, "  \"victim\": {},", params.victim);
    let _ = writeln!(out, "  \"window_ns\": {},", params.window_ns);
    let _ = writeln!(out, "  \"partition_window\": {},", params.partition_window);
    let _ = writeln!(out, "  \"isolate_window\": {},", params.isolate_window);
    let _ = writeln!(out, "  \"heal_window\": {},", params.heal_window);
    let _ = writeln!(out, "  \"seed\": {},", params.seed);
    out.push_str("  \"modes\": [\n");
    for (mi, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"mode\": \"{}\",", mode_name(r.mode));
        let _ = writeln!(
            out,
            "      \"baseline_goodput_per_window\": {:.2},",
            r.baseline
        );
        let _ = writeln!(out, "      \"clean\": {},", r.clean);
        let _ = writeln!(out, "      \"flagged\": {},", r.flagged);
        let _ = writeln!(out, "      \"timeouts\": {},", r.timeouts);
        let _ = writeln!(out, "      \"stale_reads\": {},", r.stale_reads);
        let _ = writeln!(out, "      \"failovers\": {},", r.failovers);
        let _ = writeln!(out, "      \"quorum_reads\": {},", r.quorum_reads);
        let _ = writeln!(out, "      \"read_repairs\": {},", r.read_repairs);
        let _ = writeln!(
            out,
            "      \"partition_suspects\": {},",
            r.partition_suspects
        );
        let _ = writeln!(out, "      \"puts_applied\": {},", r.puts_applied);
        out.push_str("      \"windows\": [\n");
        for (i, w) in r.windows.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"idx\": {}, \"start_ns\": {}, \"served\": {}, \"timeouts\": {}, \
                 \"stale\": {}, \"stale_rate\": {:.4}}}",
                i,
                w.start_ns,
                w.served,
                w.timeouts,
                w.stale,
                w.stale_rate()
            );
            out.push_str(if i + 1 < r.windows.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if mi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs both read modes, prints the window series, writes artifacts.
pub fn run(params: &PartitionParams) {
    let mut results = Vec::new();
    for mode in [ReadMode::Any, ReadMode::Quorum] {
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let tele = Telemetry::attach(&sim);
        let r = run_partition(params, mode, &tele);
        if mode == ReadMode::Quorum {
            if let Err(e) = write_metrics_artifact("partition", &tele) {
                eprintln!("  metrics artifact write failed: {e}");
            }
        }
        results.push(r);
    }

    let phase = |i: usize| {
        if i < params.partition_window {
            "healthy"
        } else if i < params.isolate_window {
            "split-brain"
        } else if i < params.heal_window {
            "client w/ minority"
        } else {
            "healed"
        }
    };
    let any = &results[0];
    let quorum = &results[1];
    let rows: Vec<Vec<String>> = any
        .windows
        .iter()
        .zip(quorum.windows.iter())
        .enumerate()
        .map(|(i, (a, q))| {
            vec![
                i.to_string(),
                phase(i).to_string(),
                a.served.to_string(),
                format!("{:.2}", a.stale_rate()),
                q.served.to_string(),
                format!("{:.2}", q.stale_rate()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Partition: {} nodes, R={}, victim {} split at window {}",
            params.nodes, params.replication, params.victim, params.partition_window
        ),
        &[
            "window",
            "phase",
            "any served",
            "any stale",
            "quorum served",
            "quorum stale",
        ],
        &rows,
    );
    for r in &results {
        println!(
            "  {:>6}: baseline {}/window, clean {}, stale reads {}, timeouts {}, \
             failovers {}, quorum reads {}, read repairs {}, partition suspects {}",
            mode_name(r.mode),
            f1(r.baseline),
            r.clean,
            r.stale_reads,
            r.timeouts,
            r.failovers,
            r.quorum_reads,
            r.read_repairs,
            r.partition_suspects
        );
    }

    match write_json_artifact("partition", &to_json(params, &results)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => eprintln!("  artifact write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_mode(mode: ReadMode) -> PartitionResult {
        let params = PartitionParams::quick();
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let tele = Telemetry::attach(&sim);
        run_partition(&params, mode, &tele)
    }

    #[test]
    fn any_mode_trades_staleness_for_availability() {
        let r = run_mode(ReadMode::Any);
        assert!(r.baseline > 0.0, "pre-partition traffic flows");
        assert!(
            r.stale_reads > 0,
            "ReadMode::Any serves stale reads from the minority side"
        );
        assert!(r.failovers >= 1, "the client failed over toward the victim");
        assert_eq!(r.quorum_reads, 0);
        // Post-heal windows serve again.
        let tail = &r.windows[r.windows.len() - 3..];
        assert!(
            tail.iter().any(|w| w.served > 0),
            "goodput returns after heal"
        );
    }

    #[test]
    fn quorum_mode_never_serves_a_stale_read() {
        let r = run_mode(ReadMode::Quorum);
        assert!(r.baseline > 0.0, "pre-partition traffic flows");
        assert_eq!(
            r.stale_reads, 0,
            "majority fan-out reads never return a stale version"
        );
        assert!(r.quorum_reads > 0, "GETs went through the quorum path");
        // The isolated stretch is unavailable rather than inconsistent.
        let params = PartitionParams::quick();
        let iso = &r.windows[params.isolate_window + 2..params.heal_window];
        let iso_timeouts: u64 = iso.iter().map(|w| w.timeouts).sum();
        assert!(
            iso_timeouts > 0,
            "quorum reads time out while the majority is unreachable"
        );
        let tail = &r.windows[r.windows.len() - 3..];
        assert!(
            tail.iter().any(|w| w.served > 0),
            "goodput returns after heal"
        );
    }

    #[test]
    fn artifact_json_is_valid_and_complete() {
        let params = PartitionParams::quick();
        let results: Vec<PartitionResult> = [ReadMode::Any, ReadMode::Quorum]
            .into_iter()
            .map(run_mode)
            .collect();
        let json = to_json(&params, &results);
        let doc = cf_telemetry::json::parse(&json).expect("artifact parses");
        for field in [
            "experiment",
            "partition_window",
            "isolate_window",
            "heal_window",
            "modes",
        ] {
            assert!(doc.get(field).is_some(), "missing field {field}");
        }
        let modes = doc.get("modes").unwrap().as_arr().expect("modes array");
        assert_eq!(modes.len(), 2);
        for m in modes {
            for field in [
                "mode",
                "stale_reads",
                "quorum_reads",
                "read_repairs",
                "windows",
            ] {
                assert!(m.get(field).is_some(), "missing mode field {field}");
            }
            let windows = m.get("windows").unwrap().as_arr().expect("window series");
            assert_eq!(windows.len(), params.total_windows);
            for w in windows {
                assert!(
                    w.get("stale_rate").is_some(),
                    "windows carry a stale-read rate"
                );
            }
        }
        let any = &modes[0];
        let quorum = &modes[1];
        assert_eq!(any.get("mode").unwrap().as_str().unwrap(), "any");
        assert!(any.get("stale_reads").unwrap().as_u64().unwrap() > 0);
        assert_eq!(quorum.get("stale_reads").unwrap().as_u64().unwrap(), 0);
    }
}
