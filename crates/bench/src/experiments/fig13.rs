//! Figure 13: multicore scaling (§6.6).
//!
//! The §2.4 microbenchmark: requests carry *IDs* that index an array of
//! values (two non-contiguous 512-byte buffers each) whose total size is
//! ~10× the LLC, sharded across cores. Copy vs *raw* scatter-gather.
//! Paper result: scatter-gather starts at 16.8 Gbps on one core and copy
//! at 10.5 Gbps (~33 % lower); both scale linearly with core count until
//! they plateau at about 73.5 Gbps of aggregate NIC capacity.
//!
//! Per-core behaviour is measured on an independent shard (one single-core
//! simulation per shard, as the paper shards its memory per core); the
//! aggregate is the sharded sum capped by the NIC.

use cf_net::{FrameMeta, UdpStack};
use cf_nic::link;
use cf_sim::cost::Category;
use cf_sim::queueing::OpenLoopSim;
use cf_sim::rng::SplitMix64;
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::msgs::GetM;
use cornflakes_core::{CFBytes, CornflakesObj, SerializationConfig};

use crate::harness::large_pool;
use crate::tables::{f1, print_expectation, print_table};

/// Aggregate NIC ceiling in Gbps (payload goodput the paper's CX-6
/// sustains at this packet size).
pub const NIC_CAP_GBPS: f64 = 73.5;

/// Synthetic address of the ID→buffer pointer array (metadata lines).
const ARRAY_BASE: u64 = 0x7800_0000_0000;

/// Per-core capacity (Gbps) of the ID-indexed microbenchmark server.
///
/// `copy_mode` selects all-copy serialization; otherwise raw scatter-gather
/// (no safety bookkeeping, as the paper's §2.4/§6.6 microbenchmark).
pub fn id_server_gbps(copy_mode: bool, num_values: u64, requests: u64) -> f64 {
    let server_sim = Sim::new(MachineProfile::microbench());
    let (cp, sp) = link();
    let mut client = UdpStack::new(
        Sim::new(MachineProfile::cloudlab_c6525()),
        cp,
        4000,
        SerializationConfig::hybrid(),
    );
    let config = if copy_mode {
        SerializationConfig::always_copy()
    } else {
        SerializationConfig::raw()
    };
    let mut server = UdpStack::with_pool_config(server_sim.clone(), sp, 9000, config, large_pool());

    // The sharded value array: 2 x 512 B pinned buffers per entry,
    // ~10x the 16 MiB LLC in total.
    let values: Vec<[cf_mem::RcBuf; 2]> = (0..num_values)
        .map(|i| {
            let make = |tag: u8| {
                let mut b = server.ctx().pool.alloc(512).expect("pool");
                b.fill(tag ^ i as u8);
                b
            };
            [make(0xA0), make(0xB0)]
        })
        .collect();

    let mut rng = SplitMix64::new(0x13);
    let ol = OpenLoopSim {
        clock: server_sim.clock(),
        seed: 13,
        one_way_wire_ns: 5_000,
        duration_ns: u64::MAX / 4,
        warmup_requests: requests / 10,
    };
    let point = ol.run_saturated(requests, |seq| {
        // Client: a minimal ID request.
        let req = GetM {
            id: Some(rng.next_bounded(num_values) as u32),
            ..GetM::new()
        };
        let hdr = client.header_to(
            9000,
            FrameMeta {
                msg_type: 1,
                flags: 0,
                req_id: seq as u32,
            },
        );
        client.send_object(hdr, &req).expect("request");

        // Server: parse the ID, index the array, respond.
        let pkt = server.recv_packet().expect("request arrives");
        let req = GetM::deserialize(server.ctx(), &pkt.payload).expect("id request");
        let id = req.id.unwrap_or(0) as u64 % num_values;
        // Array indexing: one metadata line for the entry.
        server
            .sim()
            .charge_meta_access(Category::AppGet, ARRAY_BASE + id * 64);
        let mut resp = GetM::new();
        resp.id = req.id;
        {
            let ctx = server.ctx();
            for buf in &values[id as usize] {
                let field = if copy_mode {
                    CFBytes::new(ctx, buf.as_slice())
                } else {
                    // Raw scatter-gather: take the reference directly.
                    CFBytes::from_rcbuf(buf.clone())
                };
                resp.vals.append(field);
            }
        }
        let reply_hdr = pkt.hdr.reply(FrameMeta {
            msg_type: 0x81,
            flags: 0,
            req_id: pkt.hdr.meta.req_id,
        });
        server.send_object(reply_hdr, &resp).expect("reply");

        client
            .recv_packet()
            .map(|p| p.payload.len() as u64)
            .unwrap_or(0)
    });
    point.gbps()
}

/// One scaling row: cores → (copy Gbps, raw sg Gbps).
pub type ScaleRow = (usize, f64, f64);

/// Runs the scaling study for the given core counts. `shard_values` is the
/// per-shard array length (2 x 512 B each).
pub fn run(cores: &[usize], shard_values: u64, requests: u64) -> Vec<ScaleRow> {
    let copy_per_core = id_server_gbps(true, shard_values, requests);
    let sg_per_core = id_server_gbps(false, shard_values, requests);
    let rows: Vec<ScaleRow> = cores
        .iter()
        .map(|&n| {
            (
                n,
                (copy_per_core * n as f64).min(NIC_CAP_GBPS),
                (sg_per_core * n as f64).min(NIC_CAP_GBPS),
            )
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, copy, sg)| vec![n.to_string(), f1(*copy), f1(*sg)])
        .collect();
    print_table(
        "Figure 13: scaling of the 2 x 512 B microbenchmark (Gbps)",
        &["Cores", "Copy", "Raw scatter-gather"],
        &table,
    );
    print_expectation(
        "per-core throughput",
        "SG 16.8 Gbps/core, copy 10.5 Gbps/core (~33% lower); plateau ~73.5 Gbps",
        &format!("SG {sg_per_core:.1} Gbps/core, copy {copy_per_core:.1} Gbps/core"),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shape_matches_paper() {
        // 160k values x 1 KiB = 160 MB per shard: ~10x the scaled LLC.
        let rows = run(&[1, 2, 4, 8], 160_000, 800);
        let (_, copy1, sg1) = rows[0];
        // Per-core: SG clearly ahead; copy 20-45 % lower (paper ~33 %).
        let ratio = copy1 / sg1;
        assert!(
            (0.5..0.85).contains(&ratio),
            "copy/sg per-core ratio {ratio:.2} (paper ~0.63)"
        );
        // Linear region then plateau.
        let (_, _, sg2) = rows[1];
        let (_, _, sg8) = rows[3];
        assert!((sg2 / sg1 - 2.0).abs() < 0.05, "2-core SG should double");
        assert!(sg8 <= NIC_CAP_GBPS + 1e-9, "8-core SG capped at the NIC");
        assert!(sg8 > sg1 * 3.0, "8 cores well above a single core");
    }
}
