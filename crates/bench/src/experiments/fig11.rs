//! Figure 11: CPU-cycle breakdown on the CDN trace (§6.4).
//!
//! Average per-request time attributed to each request-handling phase, for
//! Cornflakes, FlatBuffers, and Protobuf. Paper findings: Cornflakes spends
//! almost nothing in serialization copies (all fields ≥ 1 KB are
//! zero-copy), its gets complete faster (more cache left for keys), and its
//! deserialization is shorter (deferred UTF-8 validation).

use cf_sim::cost::Category;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::Telemetry;
use cornflakes_core::SerializationConfig;

use cf_kv::client::{client_server_pair, KvClient};
use cf_kv::server::{KvServer, SerKind};
use cf_workloads::{key_string, CdnTrace};

use crate::artifacts::write_metrics_artifact;
use crate::harness::large_pool;
use crate::tables::{f1, print_expectation, print_table};

/// Per-category average ns/request for one system.
#[derive(Clone, Debug)]
pub struct Breakdown {
    /// The system measured.
    pub kind: SerKind,
    /// (category, ns per request) pairs in display order.
    pub per_request_ns: Vec<(Category, f64)>,
    /// Total ns per request.
    pub total_ns: f64,
}

/// Measures the attribution breakdown for one system on the CDN workload.
pub fn breakdown(kind: SerKind, num_objects: u64, requests: u64) -> Breakdown {
    breakdown_instrumented(kind, num_objects, requests).0
}

/// [`breakdown`] plus the telemetry handle that observed the measured
/// window — spans, metrics, and serializer decisions cover exactly the
/// post-warmup requests (the handle attaches at the attribution reset).
pub fn breakdown_instrumented(
    kind: SerKind,
    num_objects: u64,
    requests: u64,
) -> (Breakdown, Telemetry) {
    let server_sim = Sim::new(MachineProfile::microbench());
    let (mut client, mut server) = client_server_pair(
        server_sim.clone(),
        kind,
        SerializationConfig::hybrid(),
        large_pool(),
    );
    for id in 0..num_objects {
        let sizes: Vec<usize> = (0..CdnTrace::num_segments(id))
            .map(|s| CdnTrace::segment_size(id, s))
            .collect();
        server
            .store
            .preload(server.stack.ctx(), key_string(id).as_bytes(), &sizes)
            .expect("pool sized");
    }
    let mut trace = CdnTrace::new(num_objects, 0xF16);
    let mut drive = |client: &mut KvClient, server: &mut KvServer| {
        let (id, seg, _last) = trace.next();
        let key = key_string(id);
        client.send_get_segment(key.as_bytes(), seg as u32);
        server.poll();
        client
            .recv_response()
            .map(|r| r.payload_bytes as u64)
            .unwrap_or(0)
    };
    // Warm:
    for _ in 0..requests / 5 {
        drive(&mut client, &mut server);
    }
    let tele = Telemetry::attach(&server_sim);
    server.set_telemetry(&tele);
    server_sim.with_core(|c| c.attribution.reset());
    let t0 = server_sim.now();
    for _ in 0..requests {
        drive(&mut client, &mut server);
    }
    let elapsed = (server_sim.now() - t0) as f64;
    let attr = server_sim.attribution();
    let order = [
        Category::Rx,
        Category::Deserialize,
        Category::AppGet,
        Category::SerializeCopy,
        Category::SerializeZeroCopy,
        Category::HeaderWrite,
        Category::Alloc,
        Category::Tx,
    ];
    let result = Breakdown {
        kind,
        per_request_ns: order
            .iter()
            .map(|&c| (c, attr.get(c) / requests as f64))
            .collect(),
        total_ns: elapsed / requests as f64,
    };
    (result, tele)
}

/// Runs Figure 11, writing one `fig11-<system>-metrics.json` artifact per
/// system (see [`crate::artifacts`]).
pub fn run(num_objects: u64, requests: u64) -> Vec<Breakdown> {
    let systems = [SerKind::Cornflakes, SerKind::FlatBuffers, SerKind::Protobuf];
    let results: Vec<Breakdown> = systems
        .iter()
        .map(|&k| {
            let (b, tele) = breakdown_instrumented(k, num_objects, requests);
            let name = format!("fig11-{}", k.metric_key());
            match write_metrics_artifact(&name, &tele) {
                Ok(path) => println!("  metrics artifact: {}", path.display()),
                Err(e) => eprintln!("  metrics artifact for {name} not written: {e}"),
            }
            b
        })
        .collect();
    let headers: Vec<String> = std::iter::once("Phase (ns/req)".to_string())
        .chain(results.iter().map(|b| b.kind.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (i, (cat, _)) in results[0].per_request_ns.iter().enumerate() {
        let mut row = vec![cat.label().to_string()];
        for b in &results {
            row.push(f1(b.per_request_ns[i].1));
        }
        rows.push(row);
    }
    let mut total_row = vec!["TOTAL".to_string()];
    for b in &results {
        total_row.push(f1(b.total_ns));
    }
    rows.push(total_row);
    print_table(
        "Figure 11: per-request cycle breakdown (CDN trace)",
        &header_refs,
        &rows,
    );
    print_expectation(
        "Cornflakes profile",
        "near-zero serialization copies; shorter deserialize; faster gets",
        "see columns",
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(b: &Breakdown, cat: Category) -> f64 {
        b.per_request_ns
            .iter()
            .find(|(c, _)| *c == cat)
            .expect("category present")
            .1
    }

    #[test]
    fn breakdown_shape_matches_paper() {
        let results = run(1_000, 600);
        let cf = &results[0];
        let flat = &results[1];
        let proto = &results[2];
        // Cornflakes spends (almost) nothing copying; baselines are
        // dominated by copies.
        assert!(
            ns(cf, Category::SerializeCopy) < 80.0,
            "Cornflakes copies: {:.0} ns",
            ns(cf, Category::SerializeCopy)
        );
        for b in [flat, proto] {
            assert!(
                ns(b, Category::SerializeCopy) > 4.0 * ns(cf, Category::SerializeCopy).max(40.0),
                "{:?} should be copy-dominated ({:.0} ns)",
                b.kind,
                ns(b, Category::SerializeCopy)
            );
        }
        // Cornflakes pays zero-copy bookkeeping instead.
        assert!(ns(cf, Category::SerializeZeroCopy) > 50.0);
        // Total per-request time: Cornflakes clearly lowest.
        assert!(cf.total_ns < flat.total_ns);
        assert!(cf.total_ns < proto.total_ns);
        // Deserialization (tiny single-key requests) is no longer for
        // Cornflakes than the baselines.
        assert!(ns(cf, Category::Deserialize) <= ns(proto, Category::Deserialize) * 1.2);
    }
}
