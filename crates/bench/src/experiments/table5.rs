//! Table 5: the combined serialize-and-send ablation (§6.5.2).
//!
//! With the optimization, the packet header, object header, and copied
//! fields share the first scatter-gather entry and no intermediate
//! scatter-gather array is materialized. Without it, the serialization
//! layer produces an SGA and the stack prepends a separate header entry.
//! Paper result: +7.7 % (Google 1–4 vals), +10.4 % (Twitter), +17.4 %
//! (YCSB 4 × 1024 B) — "crucial to squeeze the best performance out of the
//! scatter-gather hardware".

use cornflakes_core::SerializationConfig;

use cf_kv::server::SerKind;

use super::fig03::microbench_gbps;
use super::fig06::google_krps;
use super::fig07::sweep_twitter;
use crate::tables::{f1, pct, print_expectation, print_table};

/// Runs Table 5. Returns [(workload, with, without, unit)].
pub fn run(
    num_keys: u64,
    requests: u64,
    duration_ns: u64,
) -> Vec<(String, f64, f64, &'static str)> {
    let with_cfg = SerializationConfig::hybrid();
    let without_cfg = SerializationConfig::hybrid().without_serialize_and_send();
    let mut results = Vec::new();

    // Google 1-4 vals (krps).
    let g_with = google_krps(SerKind::Cornflakes, with_cfg, num_keys, 4, requests);
    let g_without = google_krps(SerKind::Cornflakes, without_cfg, num_keys, 4, requests);
    results.push(("Google 1-4 vals".to_string(), g_with, g_without, "krps"));

    // Twitter (max krps).
    let t_with = sweep_twitter(SerKind::Cornflakes, with_cfg, num_keys, duration_ns)
        .max_achieved_rps()
        / 1e3;
    let t_without = sweep_twitter(SerKind::Cornflakes, without_cfg, num_keys, duration_ns)
        .max_achieved_rps()
        / 1e3;
    results.push(("Twitter".to_string(), t_with, t_without, "krps"));

    // YCSB 4 x 1024 B (Gbps).
    let y_with = microbench_gbps(with_cfg, false, num_keys, 4, 1024, requests, requests / 10);
    let y_without = microbench_gbps(
        without_cfg,
        false,
        num_keys,
        4,
        1024,
        requests,
        requests / 10,
    );
    results.push(("YCSB 1024x4".to_string(), y_with, y_without, "Gbps"));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, w, wo, unit)| {
            vec![
                name.clone(),
                format!("{} {unit}", f1(*w)),
                format!("{} {unit}", f1(*wo)),
                pct((w - wo) / wo * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table 5: combined serialize-and-send ablation",
        &["Workload", "With", "Without", "Gain"],
        &rows,
    );
    print_expectation("gain", "+7.7% to +17.4%", "see table");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_and_send_always_helps() {
        let results = run(5_000, 400, 3_000_000);
        for (name, with, without, _) in results {
            let gain = (with - without) / without * 100.0;
            assert!(
                gain > 2.0,
                "{name}: serialize-and-send should help (+{gain:.1}%)"
            );
            assert!(gain < 40.0, "{name}: gain {gain:.1}% implausible");
        }
    }
}
