//! Figure 3: the §2.4 scatter-gather microbenchmark.
//!
//! Clients query a key-value store whose working set is several times
//! larger than the LLC; each response is a 2048-byte payload assembled from
//! 32 down to 1 non-contiguous buffers. Three configurations compete:
//! all-copy, scatter-gather *with* the memory-safety software overheads,
//! and raw scatter-gather without them.
//!
//! Paper result: raw scatter-gather strictly outperforms copying even for
//! 64-byte buffers, but with software overheads scatter-gather only wins
//! at 512 bytes and above.

use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::client::client_server_pair;
use cf_kv::server::SerKind;
use cf_workloads::{key_string, Zipf};

use crate::harness::large_pool;
use crate::tables::{f1, print_expectation, print_table};

/// One microbenchmark measurement on `profile`: max payload throughput in
/// Gbps for values of `segments` buffers of `seg_size` bytes.
#[allow(clippy::too_many_arguments)]
pub fn microbench_gbps_on(
    profile: MachineProfile,
    config: SerializationConfig,
    raw_zero_copy: bool,
    num_keys: u64,
    segments: usize,
    seg_size: usize,
    requests: u64,
    warmup: u64,
) -> f64 {
    let server_sim = Sim::new(profile);
    let (mut client, mut server) = client_server_pair(
        server_sim.clone(),
        SerKind::Cornflakes,
        config,
        large_pool(),
    );
    server.raw_zero_copy = raw_zero_copy;
    let sizes = vec![seg_size; segments];
    for id in 0..num_keys {
        server
            .store
            .preload(server.stack.ctx(), key_string(id).as_bytes(), &sizes)
            .expect("pool sized for microbench");
    }
    let mut zipf = Zipf::new(num_keys, 0.99, 0x5eed);
    let ol = cf_sim::queueing::OpenLoopSim {
        clock: server_sim.clock(),
        seed: 3,
        one_way_wire_ns: 5_000,
        duration_ns: u64::MAX / 4,
        warmup_requests: warmup,
    };
    let point = ol.run_saturated(requests, |_| {
        let key = key_string(zipf.next());
        client.send_get(&[key.as_bytes()]);
        server.poll();
        client
            .recv_response()
            .map(|r| r.payload_bytes as u64)
            .unwrap_or(0)
    });
    point.gbps()
}

/// [`microbench_gbps_on`] with the scaled-LLC microbench profile.
#[allow(clippy::too_many_arguments)]
pub fn microbench_gbps(
    config: SerializationConfig,
    raw_zero_copy: bool,
    num_keys: u64,
    segments: usize,
    seg_size: usize,
    requests: u64,
    warmup: u64,
) -> f64 {
    microbench_gbps_on(
        MachineProfile::microbench(),
        config,
        raw_zero_copy,
        num_keys,
        segments,
        seg_size,
        requests,
        warmup,
    )
}

/// One row of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Number of buffers the 2048-byte payload is split into.
    pub segments: usize,
    /// Individual buffer size.
    pub seg_size: usize,
    /// All-copy throughput (Gbps).
    pub copy: f64,
    /// Scatter-gather with safety overheads (Gbps).
    pub sg: f64,
    /// Raw scatter-gather (Gbps).
    pub raw: f64,
}

/// Runs Figure 3 over `num_keys` keys with `requests` per point.
pub fn run(num_keys: u64, requests: u64) -> Vec<Fig3Row> {
    const TOTAL: usize = 2048;
    let mut rows = Vec::new();
    for &segments in &[32usize, 16, 8, 4, 2, 1] {
        let seg_size = TOTAL / segments;
        let warmup = requests / 10;
        let copy = microbench_gbps(
            SerializationConfig::always_copy(),
            false,
            num_keys,
            segments,
            seg_size,
            requests,
            warmup,
        );
        let sg = microbench_gbps(
            SerializationConfig::always_zero_copy(),
            false,
            num_keys,
            segments,
            seg_size,
            requests,
            warmup,
        );
        let raw = microbench_gbps(
            SerializationConfig::raw(),
            true,
            num_keys,
            segments,
            seg_size,
            requests,
            warmup,
        );
        rows.push(Fig3Row {
            segments,
            seg_size,
            copy,
            sg,
            raw,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} x {}B", r.segments, r.seg_size),
                f1(r.copy),
                f1(r.sg),
                f1(r.raw),
                if r.sg > r.copy { "sg" } else { "copy" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 3: 2048 B payload from N buffers (max Gbps)",
        &["Shape", "Copy", "SG+overheads", "Raw SG", "Winner"],
        &table,
    );
    print_expectation(
        "crossover",
        "raw SG always wins; SG+overheads wins only for buffers >= 512 B",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{}B:{}",
                    r.seg_size,
                    if r.sg > r.copy { "sg" } else { "copy" }
                )
            })
            .collect::<Vec<_>>()
            .join(" "),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_holds_scaled_down() {
        // 40k keys x 2 KiB ≈ 80 MB of values against a 16 MiB LLC — the
        // paper's "about 5x larger than L3 cache" (§2.4). The Zipf-hot head
        // stays resident, the tail misses.
        let rows = run(40_000, 600);
        for r in &rows {
            assert!(
                r.raw > r.copy,
                "raw SG must always beat copy ({} x {}B: raw {} vs copy {})",
                r.segments,
                r.seg_size,
                r.raw,
                r.copy
            );
            assert!(r.raw >= r.sg * 0.98, "raw SG bounds safe SG");
            if r.seg_size >= 512 {
                assert!(
                    r.sg > r.copy,
                    "SG should win at {}B fields ({} vs {})",
                    r.seg_size,
                    r.sg,
                    r.copy
                );
            } else if r.seg_size <= 128 {
                assert!(
                    r.copy > r.sg,
                    "copy should win at {}B fields ({} vs {})",
                    r.seg_size,
                    r.copy,
                    r.sg
                );
            }
        }
    }
}
