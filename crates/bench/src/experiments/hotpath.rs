//! Hot-path microbenchmark: ns/op and allocs/op for the steady-state
//! request path, per serialization kind. The enforcement artifact behind
//! the CI benchmark ratchet (`BENCH_hotpath.json`).
//!
//! Three drivers per [`SerKind`], all on a warm client/server pair:
//!
//! | op          | what one iteration does                                |
//! |-------------|--------------------------------------------------------|
//! | `get`       | single-key GET round trip (encode → serve → recv)      |
//! | `batch_get` | multi-key GET round trip (`batch_keys` keys)           |
//! | `put`       | PUT round trip overwriting a hot key                   |
//!
//! Two measurements per op:
//!
//! - **ns/op** — *real* wall-clock time (`std::time::Instant`), not virtual
//!   time: allocator churn is invisible to the simulator's cost model, so
//!   the zero-alloc work can only be observed on the host clock. Split
//!   into `encode` (client send), `serve` (server poll: decode + app +
//!   reply), and `recv` (client decode) segments.
//! - **allocs/op** — real heap acquisitions from
//!   [`cf_telemetry::alloctrack`], meaningful when the enclosing binary
//!   installs [`cf_telemetry::CountingAlloc`] as its global allocator (the
//!   `hotpath` bench does; the in-lib smoke test does not, and reports
//!   `alloc_counted: false`).
//!
//! Emits `hotpath.json` (schema in EXPERIMENTS.md). The committed
//! `BENCH_hotpath.json` is the ratchet baseline: the bench binary itself
//! compares a fresh run against it and fails on regression — allocs/op is
//! a hard floor (deterministic), ns/op gets a configurable tolerance
//! (`CF_HOTPATH_TOLERANCE`, default 2.0×, wall clocks differ across
//! machines).

use std::time::Instant;

use cf_net::UdpStack;
use cf_nic::link;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::alloctrack::alloc_count;
use cornflakes_core::SerializationConfig;

use cf_kv::client::{KvClient, Response, CLIENT_PORT, SERVER_PORT};
use cf_kv::server::{KvServer, SerKind};

use crate::artifacts::write_json_artifact;
use crate::tables::print_table;

/// Harness knobs; [`HotpathParams::quick`] is the CI-sized preset.
#[derive(Clone, Debug)]
pub struct HotpathParams {
    /// Untimed rounds per op before measurement (pools, maps, and scratch
    /// reach their steady-state footprint — the warmup contract).
    pub warmup: u64,
    /// Timed rounds per op.
    pub rounds: u64,
    /// Value size in bytes (below the hybrid threshold: exercises the
    /// arena-copy encode path; served values still leave zero-copy).
    pub value_bytes: usize,
    /// Keys per `batch_get` iteration.
    pub batch_keys: usize,
}

impl HotpathParams {
    /// Full run: enough rounds that per-round `Instant` overhead amortizes.
    pub fn full() -> Self {
        HotpathParams {
            warmup: 1_024,
            rounds: 16_384,
            value_bytes: 256,
            batch_keys: 8,
        }
    }

    /// CI smoke preset: the same shape, a fraction of the volume.
    pub fn quick() -> Self {
        HotpathParams {
            warmup: 256,
            rounds: 2_048,
            ..HotpathParams::full()
        }
    }
}

/// Per-op measurement.
#[derive(Clone, Debug)]
pub struct OpStats {
    /// Operation label (`get`, `batch_get`, `put`).
    pub op: &'static str,
    /// Wall-clock nanoseconds per round trip.
    pub ns_per_op: f64,
    /// Heap acquisitions per round trip (0.0 when not counted).
    pub allocs_per_op: f64,
    /// Client encode+send segment of `ns_per_op`.
    pub encode_ns_per_op: f64,
    /// Server poll (decode + app + reply) segment.
    pub serve_ns_per_op: f64,
    /// Client receive+decode segment.
    pub recv_ns_per_op: f64,
}

/// One serialization kind's measurements.
#[derive(Clone, Debug)]
pub struct KindReport {
    /// Kind label (lowercase).
    pub kind: &'static str,
    /// `get`, `batch_get`, `put` in order.
    pub ops: Vec<OpStats>,
}

/// The full report, as emitted to `hotpath.json`.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    /// Timed rounds per op.
    pub rounds: u64,
    /// Warmup rounds per op.
    pub warmup: u64,
    /// Value size driven.
    pub value_bytes: usize,
    /// Whether the binary counts heap acquisitions (global allocator is
    /// [`cf_telemetry::CountingAlloc`]). When false, allocs/op is 0 by
    /// construction and must not be ratcheted against.
    pub alloc_counted: bool,
    /// Per-kind measurements.
    pub kinds: Vec<KindReport>,
}

const KINDS: [(SerKind, &str); 4] = [
    (SerKind::Cornflakes, "cornflakes"),
    (SerKind::Protobuf, "protobuf"),
    (SerKind::FlatBuffers, "flatbuffers"),
    (SerKind::CapnProto, "capnproto"),
];

/// Client and server on one Sim, telemetry disabled, no retries — the
/// zero-alloc steady-state configuration (DESIGN.md "Hot-path memory
/// discipline").
fn fixture(kind: SerKind) -> (KvClient, KvServer) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (cp, sp) = link();
    let client_stack = UdpStack::new(sim.clone(), cp, CLIENT_PORT, SerializationConfig::hybrid());
    let server_stack = UdpStack::new(sim.clone(), sp, SERVER_PORT, SerializationConfig::hybrid());
    let client = KvClient::new(client_stack, kind);
    let mut server = KvServer::new(server_stack, kind);
    // A dedup window the warmup saturates: once full, each put's id insert
    // evicts the oldest in place and the window's containers stop growing.
    server.set_dedup_capacity(128);
    (client, server)
}

/// Whether this binary's global allocator feeds the acquisition counter.
fn alloc_counting_active() -> bool {
    let before = alloc_count();
    let probe = std::hint::black_box(Box::new(0u8));
    drop(probe);
    alloc_count() != before
}

struct RoundTimer {
    encode_ns: f64,
    serve_ns: f64,
    recv_ns: f64,
    allocs: u64,
}

impl RoundTimer {
    fn new() -> Self {
        RoundTimer {
            encode_ns: 0.0,
            serve_ns: 0.0,
            recv_ns: 0.0,
            allocs: 0,
        }
    }

    fn stats(&self, op: &'static str, rounds: u64) -> OpStats {
        let per = |total: f64| total / rounds as f64;
        OpStats {
            op,
            ns_per_op: per(self.encode_ns + self.serve_ns + self.recv_ns),
            allocs_per_op: self.allocs as f64 / rounds as f64,
            encode_ns_per_op: per(self.encode_ns),
            serve_ns_per_op: per(self.serve_ns),
            recv_ns_per_op: per(self.recv_ns),
        }
    }
}

/// One timed round trip; segment times and allocation counts accumulate
/// into `t`. `send` must enqueue exactly one request. The response decodes
/// into the caller's reusable `resp` so its buffers persist across rounds
/// (the steady-state client pattern — `KvClient::recv_response_into`).
fn timed_round(
    client: &mut KvClient,
    server: &mut KvServer,
    t: &mut RoundTimer,
    resp: &mut Response,
    send: impl FnOnce(&mut KvClient) -> u32,
) {
    let a0 = alloc_count();
    let t0 = Instant::now();
    let id = send(client);
    let t1 = Instant::now();
    let served = server.poll();
    let t2 = Instant::now();
    let answered = client.recv_response_into(resp);
    let t3 = Instant::now();
    t.allocs += alloc_count() - a0;
    t.encode_ns += (t1 - t0).as_nanos() as f64;
    t.serve_ns += (t2 - t1).as_nanos() as f64;
    t.recv_ns += (t3 - t2).as_nanos() as f64;
    assert_eq!(served, 1, "exactly one request served per round");
    assert!(answered, "request answered");
    assert_eq!(resp.id, Some(id), "response matches request");
}

fn measure_kind(params: &HotpathParams, kind: SerKind, label: &'static str) -> KindReport {
    let (mut client, mut server) = fixture(kind);
    let value = vec![0x5A_u8; params.value_bytes];
    let key: &[u8] = b"hotpath-key";
    // The one Response for the whole kind: its value buffers reach batch
    // capacity during warmup and are reused every round after.
    let mut resp = Response::default();
    // Batched keys share the hot key's value size; preload them once.
    let batch_names: Vec<Vec<u8>> = (0..params.batch_keys)
        .map(|i| format!("hotpath-batch-{i:04}").into_bytes())
        .collect();
    for name in &batch_names {
        let id = client.send_put(name, &value);
        server.poll();
        assert!(client.recv_response_into(&mut resp), "preload put answered");
        assert_eq!(resp.id, Some(id));
    }
    let batch_refs: Vec<&[u8]> = batch_names.iter().map(|n| n.as_slice()).collect();

    // Seed the hot key, then warm every driver.
    let id = client.send_put(key, &value);
    server.poll();
    assert!(client.recv_response_into(&mut resp), "seed put answered");
    assert_eq!(resp.id, Some(id));
    for _ in 0..params.warmup {
        let mut sink = RoundTimer::new();
        timed_round(&mut client, &mut server, &mut sink, &mut resp, |c| {
            c.send_get(&[key])
        });
        timed_round(&mut client, &mut server, &mut sink, &mut resp, |c| {
            c.send_get(&batch_refs)
        });
        timed_round(&mut client, &mut server, &mut sink, &mut resp, |c| {
            c.send_put(key, &value)
        });
    }

    let mut ops = Vec::new();
    let mut get_t = RoundTimer::new();
    for _ in 0..params.rounds {
        timed_round(&mut client, &mut server, &mut get_t, &mut resp, |c| {
            c.send_get(&[key])
        });
    }
    ops.push(get_t.stats("get", params.rounds));

    let mut batch_t = RoundTimer::new();
    for _ in 0..params.rounds {
        timed_round(&mut client, &mut server, &mut batch_t, &mut resp, |c| {
            c.send_get(&batch_refs)
        });
    }
    ops.push(batch_t.stats("batch_get", params.rounds));

    let mut put_t = RoundTimer::new();
    for _ in 0..params.rounds {
        timed_round(&mut client, &mut server, &mut put_t, &mut resp, |c| {
            c.send_put(key, &value)
        });
    }
    ops.push(put_t.stats("put", params.rounds));

    KindReport { kind: label, ops }
}

fn report_json(r: &HotpathReport) -> String {
    let mut kinds = String::new();
    for (i, k) in r.kinds.iter().enumerate() {
        let ops: Vec<String> = k
            .ops
            .iter()
            .map(|o| {
                format!(
                    "      {{\"op\": \"{}\", \"ns_per_op\": {:.1}, \"allocs_per_op\": {:.4}, \
                     \"encode_ns_per_op\": {:.1}, \"serve_ns_per_op\": {:.1}, \
                     \"recv_ns_per_op\": {:.1}}}",
                    o.op,
                    o.ns_per_op,
                    o.allocs_per_op,
                    o.encode_ns_per_op,
                    o.serve_ns_per_op,
                    o.recv_ns_per_op
                )
            })
            .collect();
        kinds.push_str(&format!(
            "    {{\"kind\": \"{}\", \"ops\": [\n{}\n    ]}}{}\n",
            k.kind,
            ops.join(",\n"),
            if i + 1 < r.kinds.len() { "," } else { "" }
        ));
    }
    format!(
        "{{\n  \"experiment\": \"hotpath\",\n  \"rounds\": {},\n  \"warmup\": {},\n  \
         \"value_bytes\": {},\n  \"alloc_counted\": {},\n  \"kinds\": [\n{}  ]\n}}\n",
        r.rounds, r.warmup, r.value_bytes, r.alloc_counted, kinds
    )
}

/// Runs the microbenchmark, prints the table, writes `hotpath.json`.
pub fn run(params: &HotpathParams) -> HotpathReport {
    let report = HotpathReport {
        rounds: params.rounds,
        warmup: params.warmup,
        value_bytes: params.value_bytes,
        alloc_counted: alloc_counting_active(),
        kinds: KINDS
            .iter()
            .map(|(kind, label)| measure_kind(params, *kind, label))
            .collect(),
    };

    let mut rows = Vec::new();
    for k in &report.kinds {
        for o in &k.ops {
            rows.push(vec![
                k.kind.to_string(),
                o.op.to_string(),
                format!("{:.0}", o.ns_per_op),
                if report.alloc_counted {
                    format!("{:.2}", o.allocs_per_op)
                } else {
                    "n/a".to_string()
                },
                format!("{:.0}", o.encode_ns_per_op),
                format!("{:.0}", o.serve_ns_per_op),
                format!("{:.0}", o.recv_ns_per_op),
            ]);
        }
    }
    print_table(
        "Hot path: ns/op and allocs/op per round trip (real time)",
        &[
            "kind",
            "op",
            "ns/op",
            "allocs/op",
            "encode",
            "serve",
            "recv",
        ],
        &rows,
    );

    match write_json_artifact("hotpath", &report_json(&report)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => eprintln!("  artifact write failed: {e}"),
    }
    report
}

/// Stray-allocation budget per measured window: a handful of one-off
/// allocations per window (lazy runtime init, hash-seed-dependent rehash
/// timing, amortized container doubling that happens to land inside the
/// window) is a *fixed* count, not a per-request cost, so the floor's
/// slack is `STRAY_ALLOC_BUDGET / rounds` — it shrinks as the run grows.
/// Any structural regression costs at least one allocation per request,
/// orders of magnitude above this budget, and still trips.
const STRAY_ALLOC_BUDGET: f64 = 16.0;

/// Compares a fresh report against the committed `BENCH_hotpath.json`
/// baseline. Returns every violation found (empty = ratchet holds).
///
/// - **allocs/op is a hard floor** (modulo [`STRAY_ALLOC_BUDGET`] one-off
///   allocations per window): the driver is deterministic, so any
///   per-request rise over the baseline is a regression. Only enforced
///   when both the baseline and the current run actually counted
///   allocations.
/// - **ns/op gets `tolerance`** (a multiplier, e.g. 2.0): wall clocks
///   differ across machines, so the gate catches structural regressions,
///   not scheduler noise.
/// - A kind/op present in the baseline but missing from the current run is
///   a violation — coverage only ratchets up.
pub fn ratchet(current: &HotpathReport, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let baseline = match cf_telemetry::json::parse(baseline_json) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline is not valid JSON: {e}")],
    };
    let base_counted = matches!(
        baseline.get("alloc_counted"),
        Some(cf_telemetry::json::Value::Bool(true))
    );
    let enforce_allocs = base_counted && current.alloc_counted;
    let alloc_slack = STRAY_ALLOC_BUDGET / current.rounds.max(1) as f64;

    let kinds = baseline
        .get("kinds")
        .and_then(|v| v.as_arr().map(<[_]>::to_vec))
        .unwrap_or_default();
    if kinds.is_empty() {
        violations.push("baseline has no kinds".to_string());
    }
    for bk in &kinds {
        let kind = bk.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        let Some(ck) = current.kinds.iter().find(|k| k.kind == kind) else {
            violations.push(format!("kind {kind} present in baseline, missing from run"));
            continue;
        };
        for bo in bk.get("ops").and_then(|v| v.as_arr()).unwrap_or(&[]).iter() {
            let op = bo.get("op").and_then(|v| v.as_str()).unwrap_or("?");
            let Some(co) = ck.ops.iter().find(|o| o.op == op) else {
                violations.push(format!("{kind}.{op} present in baseline, missing from run"));
                continue;
            };
            let base_ns = bo.get("ns_per_op").and_then(|v| v.as_f64()).unwrap_or(0.0);
            if base_ns > 0.0 && co.ns_per_op > base_ns * tolerance {
                violations.push(format!(
                    "{kind}.{op}: ns/op regressed {:.0} -> {:.0} (> {tolerance:.2}x tolerance)",
                    base_ns, co.ns_per_op
                ));
            }
            if enforce_allocs {
                let base_allocs = bo
                    .get("allocs_per_op")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                if co.allocs_per_op > base_allocs + alloc_slack {
                    violations.push(format!(
                        "{kind}.{op}: allocs/op rose {:.4} -> {:.4} (hard floor)",
                        base_allocs, co.allocs_per_op
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_kinds_and_ops() {
        let report = run(&HotpathParams {
            warmup: 16,
            rounds: 64,
            ..HotpathParams::quick()
        });
        assert_eq!(report.kinds.len(), 4);
        for k in &report.kinds {
            let labels: Vec<_> = k.ops.iter().map(|o| o.op).collect();
            assert_eq!(labels, ["get", "batch_get", "put"], "kind {}", k.kind);
            for o in &k.ops {
                assert!(o.ns_per_op > 0.0, "{}:{} measured nothing", k.kind, o.op);
                let segments = o.encode_ns_per_op + o.serve_ns_per_op + o.recv_ns_per_op;
                assert!((segments - o.ns_per_op).abs() < 1e-6, "segments telescope");
            }
        }
        // The lib test binary keeps the system allocator.
        assert!(!report.alloc_counted);
        let json = report_json(&report);
        cf_telemetry::json::validate(&json).expect("artifact is valid JSON");
    }
}
