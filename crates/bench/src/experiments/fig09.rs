//! Figure 9: the TCP integration (§6.2.3).
//!
//! Echo over the Demikernel-style TCP stack: raw packet echo (an L3
//! forwarder) vs FlatBuffers vs Cornflakes, reporting p5/p25/p50/p75/p99
//! round-trip latencies. Paper result: Cornflakes sits 18–27.8 µs below
//! FlatBuffers at the tail while only adding 4.9–10.8 µs over plain packet
//! echo.

use cf_nic::link;
use cf_sim::{Histogram, MachineProfile, Sim};
use cornflakes_core::{CFBytes, CornflakesObj, SerializationConfig};

use cf_baselines::flatlite::{FlatGetM, FlatGetMView};
use cf_kv::msgs::GetMsg;
use cf_net::TcpStack;

use crate::tables::{f1, print_expectation, print_table};

/// Echo variant over TCP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpEchoKind {
    /// Forward the raw message bytes (no serialization).
    RawEcho,
    /// FlatBuffers deserialize + reserialize.
    FlatBuffers,
    /// Cornflakes deserialize + hybrid reserialize.
    Cornflakes,
}

impl TcpEchoKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TcpEchoKind::RawEcho => "Raw packet echo",
            TcpEchoKind::FlatBuffers => "FlatBuffers",
            TcpEchoKind::Cornflakes => "Cornflakes",
        }
    }
}

/// Latency percentiles for one variant (ns).
#[derive(Clone, Debug)]
pub struct TcpEchoResult {
    /// The variant.
    pub kind: TcpEchoKind,
    /// The latency distribution.
    pub latency: Histogram,
}

/// Runs `rounds` echo round trips over an established TCP pair; the paper's
/// message is a list with two 2048-byte elements.
pub fn run_variant(kind: TcpEchoKind, rounds: u64) -> TcpEchoResult {
    // Client and server share one virtual machine clock: the RTT measured
    // below therefore contains both sides' processing plus the wire floor,
    // like a real two-host RTT.
    let sim = Sim::new(MachineProfile::cloudlab_c6525());
    let (pa, pb) = link();
    let mut client = TcpStack::new(sim.clone(), pa, 4000, SerializationConfig::hybrid());
    let mut server = TcpStack::new(sim.clone(), pb, 9000, SerializationConfig::hybrid());
    client.connect(9000).expect("syn");
    server.poll().expect("syn-ack");
    client.poll().expect("ack");
    server.poll().expect("established");
    assert!(client.is_established() && server.is_established());

    let wire_one_way = 5_000u64;
    let fields = [vec![0x11u8; 2048], vec![0x22u8; 2048]];
    let mut latency = Histogram::new();
    for round in 0..rounds {
        let t0 = sim.now();
        // Client serializes and sends the request (Cornflakes framing for
        // the raw/Cornflakes variants; FlatBuffers for the FlatBuffers
        // variant — both length-prefixed on the stream).
        match kind {
            TcpEchoKind::FlatBuffers => {
                let csim = sim.clone();
                let refs: Vec<&[u8]> = fields.iter().map(|f| f.as_slice()).collect();
                let built = FlatGetM::encode(&csim, Some(round as u32), &[], &refs);
                client.send_bytes(&built).expect("send");
            }
            _ => {
                let mut m = GetMsg::new();
                {
                    let ctx = client.ctx();
                    for f in &fields {
                        m.get_mut_vals().append(CFBytes::new(ctx, f));
                    }
                }
                client.send_object(&m).expect("send");
            }
        }
        sim.clock().advance(wire_one_way);
        server.poll().expect("rx");
        let msg = server
            .recv_msg()
            .expect("rx pool healthy")
            .expect("request delivered");
        // Server deserializes, reserializes, responds.
        match kind {
            TcpEchoKind::RawEcho => {
                // L3-style forward: re-send the received bytes unparsed.
                server.send_bytes(msg.as_slice()).expect("echo");
            }
            TcpEchoKind::FlatBuffers => {
                let ssim = server.ctx().sim.clone();
                let v = FlatGetMView::parse(&ssim, msg.as_slice()).expect("parse");
                let n = v.vals_len().expect("vals");
                let vals: Vec<&[u8]> = (0..n).map(|i| v.val(i).expect("val")).collect();
                let built = FlatGetM::encode(&ssim, v.id().expect("id"), &[], &vals);
                server.send_bytes(&built).expect("echo");
            }
            TcpEchoKind::Cornflakes => {
                let mut resp = GetMsg::new();
                {
                    let ctx = server.ctx();
                    let req = GetMsg::deserialize(ctx, &msg).expect("deserialize");
                    resp.init_vals(req.vals.len());
                    for vref in req.vals.iter() {
                        resp.get_mut_vals()
                            .append(CFBytes::new(ctx, vref.as_slice()));
                    }
                }
                server.send_object(&resp).expect("echo");
            }
        }
        sim.clock().advance(wire_one_way);
        client.poll().expect("rx reply");
        let reply = client
            .recv_msg()
            .expect("rx pool healthy")
            .expect("reply delivered");
        assert!(reply.len() >= 4096, "echoed payload intact");
        // Drain ACK traffic.
        server.poll().expect("acks");
        client.poll().expect("acks");
        latency.record(sim.now() - t0);
    }
    TcpEchoResult { kind, latency }
}

/// Runs Figure 9 for all variants.
pub fn run(rounds: u64) -> Vec<TcpEchoResult> {
    let results: Vec<TcpEchoResult> = [
        TcpEchoKind::RawEcho,
        TcpEchoKind::FlatBuffers,
        TcpEchoKind::Cornflakes,
    ]
    .into_iter()
    .map(|k| run_variant(k, rounds))
    .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let q = |p: f64| f1(r.latency.quantile(p) as f64 / 1e3);
            vec![
                r.kind.name().to_string(),
                q(0.05),
                q(0.25),
                q(0.5),
                q(0.75),
                q(0.99),
            ]
        })
        .collect();
    print_table(
        "Figure 9: TCP echo latency (us)",
        &["Variant", "p5", "p25", "p50", "p75", "p99"],
        &rows,
    );
    let p99 = |k: TcpEchoKind| {
        results
            .iter()
            .find(|r| r.kind == k)
            .expect("variant present")
            .latency
            .p99() as f64
            / 1e3
    };
    print_expectation(
        "Cornflakes vs FlatBuffers p99",
        "18 to 27.8 us lower; 4.9-10.8 us over raw echo",
        &format!(
            "{:.1} us lower; {:.1} us over raw echo",
            p99(TcpEchoKind::FlatBuffers) - p99(TcpEchoKind::Cornflakes),
            p99(TcpEchoKind::Cornflakes) - p99(TcpEchoKind::RawEcho)
        ),
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_echo_latency_ordering() {
        let results = run(300);
        let p50 = |k: TcpEchoKind| {
            results
                .iter()
                .find(|r| r.kind == k)
                .expect("present")
                .latency
                .p50()
        };
        let raw = p50(TcpEchoKind::RawEcho);
        let flat = p50(TcpEchoKind::FlatBuffers);
        let cf = p50(TcpEchoKind::Cornflakes);
        assert!(raw < cf, "raw {raw} < cornflakes {cf}");
        assert!(cf < flat, "cornflakes {cf} < flatbuffers {flat}");
        // Wire floor: request + reply hops = 10 us minimum.
        assert!(raw >= 10_000, "raw echo p50 {raw} below the wire floor");
        // Cornflakes sits near raw echo; FlatBuffers clearly above both
        // (the paper's gaps are larger in absolute terms because its
        // Demikernel TCP integration is heavier; see EXPERIMENTS.md).
        assert!(
            cf - raw < 15_000,
            "Cornflakes adds {} us over raw",
            (cf - raw) / 1000
        );
        assert!(
            flat - cf > (cf - raw),
            "Cornflakes must sit closer to raw echo ({raw}) than to FlatBuffers ({flat}), cf={cf}"
        );
        assert!(
            flat - cf > 500,
            "FlatBuffers should be visibly above Cornflakes, got {}",
            flat - cf
        );
    }
}
