//! Multi-queue scaling: aggregate throughput vs queue count (paper §6.1.1's
//! multi-core serving story on the simulated hardware).
//!
//! A [`cf_kv::sharded::ShardedKvServer`] runs one shard per NIC queue, each
//! shard on its own [`Sim`] (its own core). The client steers every request
//! to the queue owning its key, so shards proceed independently; the run's
//! makespan is the furthest-ahead shard clock, and aggregate throughput is
//! `total requests / makespan`. Zipf-skewed workloads scale sublinearly —
//! the hot shard is the bottleneck — but adding queues must always help:
//! the bottleneck shard's share of the traffic strictly shrinks.
//!
//! The sweep covers YCSB-C (read-only, Zipf 0.99) and the Twitter cache
//! trace (mixed get/put), 1→8 queues, and emits a `scaling.json` artifact
//! with one `{queues, krps, elapsed_ns, per_shard_requests}` point per
//! configuration.

use cf_mem::PoolConfig;
use cf_net::UdpStack;
use cf_nic::link;
use cf_sim::{MachineProfile, Sim};
use cf_telemetry::Telemetry;
use cornflakes_core::SerializationConfig;

use cf_kv::client::{KvClient, CLIENT_PORT};
use cf_kv::server::SerKind;
use cf_kv::sharded::ShardedKvServer;
use cf_workloads::{key_string, TwitterConfig, TwitterOp, TwitterTrace, Ycsb, YcsbConfig};

use crate::artifacts::write_json_artifact;
use crate::harness::large_pool;
use crate::tables::{f1, print_table};

/// Requests batched per client burst (one server poll per burst): the
/// shape that lets transmit batching coalesce doorbells.
const BURST: u64 = 16;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Queue (= shard) count.
    pub queues: usize,
    /// Requests completed.
    pub requests: u64,
    /// Makespan: the furthest-ahead shard clock at the end of the run.
    pub elapsed_ns: u64,
    /// Aggregate throughput in kilo-requests/s of virtual time.
    pub krps: f64,
    /// Requests handled by each shard (sums to `requests`).
    pub per_shard_requests: Vec<u64>,
}

/// A full sweep for one workload.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Workload name (`ycsb-c` or `twitter`).
    pub workload: &'static str,
    /// One point per queue count, ascending.
    pub points: Vec<ScalePoint>,
}

/// The two swept workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleWorkload {
    /// YCSB-C: read-only gets, Zipf(0.99) keys, 1 KiB values.
    YcsbC,
    /// Twitter cache trace: size-skewed values, ~8 % puts.
    Twitter,
}

impl ScaleWorkload {
    /// Artifact/table name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleWorkload::YcsbC => "ycsb-c",
            ScaleWorkload::Twitter => "twitter",
        }
    }
}

/// Builds a steered client + sharded server pair with `queues` shards and
/// the workload's keys preloaded onto their owning shards.
pub fn scaling_fixture(
    workload: ScaleWorkload,
    queues: usize,
    num_keys: u64,
) -> (KvClient, ShardedKvServer) {
    let sims: Vec<Sim> = (0..queues)
        .map(|_| Sim::new(MachineProfile::microbench()))
        .collect();
    let (cp, sp) = link();
    let mut server = ShardedKvServer::on_sims(
        sims,
        sp,
        SerKind::Cornflakes,
        SerializationConfig::hybrid(),
        shard_pool(queues),
    );
    server.enable_tx_batch(BURST as usize);
    let client_sim = Sim::new(MachineProfile::cloudlab_c6525());
    let client_stack = UdpStack::with_pool_config(
        client_sim,
        cp,
        CLIENT_PORT,
        SerializationConfig::hybrid(),
        large_pool(),
    );
    let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
    client.enable_steering(&server.rss());
    for id in 0..num_keys {
        let size = match workload {
            ScaleWorkload::YcsbC => 1024,
            ScaleWorkload::Twitter => TwitterTrace::value_size(id),
        };
        server
            .preload(key_string(id).as_bytes(), &[size])
            .expect("pool sized for scaling workload");
    }
    (client, server)
}

/// Each shard holds ~its share of the keys, but the Zipf head concentrates
/// the RX-buffer working set: size every shard's pool for the full keyspace.
fn shard_pool(_queues: usize) -> PoolConfig {
    large_pool()
}

/// Runs one (workload, queue count) configuration for `requests` requests;
/// `tele` (if given) is wired through the server for counter crosschecks.
pub fn run_point(
    workload: ScaleWorkload,
    queues: usize,
    num_keys: u64,
    requests: u64,
    tele: Option<&Telemetry>,
) -> ScalePoint {
    let (mut client, mut server) = scaling_fixture(workload, queues, num_keys);
    if let Some(tele) = tele {
        server.set_telemetry(tele);
    }
    let mut ycsb = Ycsb::new(
        YcsbConfig {
            num_keys,
            value_segments: 1,
            segment_size: 1024,
            ..YcsbConfig::default()
        },
        0x5CA1E,
    );
    let mut twitter = TwitterTrace::new(
        TwitterConfig {
            num_keys,
            ..TwitterConfig::default()
        },
        0x5CA1E,
    );
    let put_scratch = vec![0xB0u8; 8192];
    let mut sent = 0u64;
    while sent < requests {
        let burst = BURST.min(requests - sent);
        for _ in 0..burst {
            match workload {
                ScaleWorkload::YcsbC => {
                    let key = key_string(ycsb.next_key());
                    client.send_get(&[key.as_bytes()]);
                }
                ScaleWorkload::Twitter => match twitter.next() {
                    TwitterOp::Get { key } => {
                        let k = key_string(key);
                        client.send_get(&[k.as_bytes()]);
                    }
                    TwitterOp::Put { key, size } => {
                        let k = key_string(key);
                        client.send_put(k.as_bytes(), &put_scratch[..size]);
                    }
                },
            }
            sent += 1;
        }
        server.poll();
        while client.recv_response().is_some() {}
    }
    let elapsed_ns = server.max_clock_ns().max(1);
    let per_shard_requests: Vec<u64> = server
        .shards()
        .iter()
        .map(|s| s.requests_handled())
        .collect();
    ScalePoint {
        queues,
        requests: server.total_requests(),
        elapsed_ns,
        krps: server.total_requests() as f64 / elapsed_ns as f64 * 1e6,
        per_shard_requests,
    }
}

/// Sweeps `queue_counts` for one workload.
pub fn sweep(
    workload: ScaleWorkload,
    queue_counts: &[usize],
    num_keys: u64,
    requests: u64,
) -> ScalingResult {
    ScalingResult {
        workload: workload.name(),
        points: queue_counts
            .iter()
            .map(|&q| run_point(workload, q, num_keys, requests, None))
            .collect(),
    }
}

/// Renders the sweep results as the `scaling.json` artifact body.
pub fn to_json(results: &[ScalingResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"scaling\",\n  \"workloads\": [\n");
    for (wi, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"points\": [\n",
            r.workload
        ));
        for (pi, p) in r.points.iter().enumerate() {
            let shards: Vec<String> = p.per_shard_requests.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "      {{\"queues\": {}, \"krps\": {:.3}, \"elapsed_ns\": {}, \"requests\": {}, \"per_shard_requests\": [{}]}}{}\n",
                p.queues,
                p.krps,
                p.elapsed_ns,
                p.requests,
                shards.join(", "),
                if pi + 1 < r.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if wi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the full scaling sweep (1→8 queues, both workloads), prints the
/// table, and writes the `scaling.json` artifact.
pub fn run(num_keys: u64, requests: u64) -> Vec<ScalingResult> {
    let queue_counts = [1usize, 2, 4, 8];
    let results: Vec<ScalingResult> = [ScaleWorkload::YcsbC, ScaleWorkload::Twitter]
        .iter()
        .map(|&w| sweep(w, &queue_counts, num_keys, requests))
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| {
            let base = r.points[0].krps;
            r.points.iter().map(move |p| {
                vec![
                    r.workload.to_string(),
                    p.queues.to_string(),
                    f1(p.krps),
                    format!("{:.2}x", p.krps / base),
                ]
            })
        })
        .collect();
    print_table(
        "Scaling: aggregate throughput vs queue count (sharded KV)",
        &["Workload", "Queues", "krps", "Speedup"],
        &rows,
    );
    match write_json_artifact("scaling", &to_json(&results)) {
        Ok(path) => println!("  artifact: {}", path.display()),
        Err(e) => println!("  artifact write failed: {e}"),
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_monotonically_on_ycsb() {
        let r = sweep(ScaleWorkload::YcsbC, &[1, 2, 4], 2048, 3_000);
        let krps: Vec<f64> = r.points.iter().map(|p| p.krps).collect();
        assert!(
            krps[0] < krps[1] && krps[1] < krps[2],
            "aggregate throughput must grow 1→2→4 queues: {krps:?}"
        );
        // Per-shard counters sum to the aggregate (within 1%; exact here).
        for p in &r.points {
            let sum: u64 = p.per_shard_requests.iter().sum();
            assert_eq!(sum, p.requests, "{} queues", p.queues);
        }
    }

    #[test]
    fn per_queue_telemetry_sums_to_aggregate() {
        let probe = Sim::new(MachineProfile::microbench());
        let tele = Telemetry::attach(&probe);
        let p = run_point(ScaleWorkload::YcsbC, 4, 1024, 1_500, Some(&tele));
        assert_eq!(p.requests, 1_500);
        let shard_total: u64 = (0..4)
            .map(|q| tele.counter(&format!("kv.shard{q}.requests")).get())
            .sum();
        assert_eq!(shard_total, tele_total(&tele, "kv.shard", ".requests", 4));
        assert_eq!(shard_total, p.requests);
        let qframes: u64 = (0..4)
            .map(|q| tele.counter(&format!("nic.q{q}.tx_frames")).get())
            .sum();
        let aggregate = tele.counter("nic.tx_frames").get();
        assert_eq!(qframes, aggregate, "per-queue NIC counters sum to nic.*");
        assert!(aggregate >= p.requests, "every request got a reply frame");
    }

    fn tele_total(tele: &Telemetry, prefix: &str, suffix: &str, n: usize) -> u64 {
        (0..n)
            .map(|q| tele.counter(&format!("{prefix}{q}{suffix}")).get())
            .sum()
    }

    #[test]
    fn shard_clocks_attribute_only_their_own_queue() {
        let (mut client, mut server) = scaling_fixture(ScaleWorkload::YcsbC, 3, 512);
        let mut ycsb = Ycsb::new(
            YcsbConfig {
                num_keys: 512,
                value_segments: 1,
                segment_size: 1024,
                ..YcsbConfig::default()
            },
            7,
        );
        for _ in 0..128 {
            let key = key_string(ycsb.next_key());
            client.send_get(&[key.as_bytes()]);
        }
        server.poll();
        for (q, sim) in server.sims().iter().enumerate() {
            for other in 0..3 {
                let attributed = sim.queue_attribution(other).total();
                if other == q {
                    assert!(attributed > 0.0, "shard {q} did work on its queue");
                } else {
                    assert_eq!(attributed, 0.0, "shard {q} must not charge queue {other}");
                }
            }
        }
    }

    #[test]
    fn artifact_json_is_valid() {
        let r = sweep(ScaleWorkload::Twitter, &[1, 2], 256, 400);
        let json = to_json(&[r]);
        cf_telemetry::json::validate(&json).expect("valid JSON");
        assert!(json.contains("\"workload\": \"twitter\""));
        assert!(json.contains("\"queues\": 2"));
    }
}
