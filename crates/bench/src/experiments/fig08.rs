//! Figure 8 + Table 3: the Redis integration (§6.2.2).
//!
//! Mini-Redis runs over the Cornflakes UDP stack with either its
//! handwritten RESP serialization or Cornflakes responses. Paper results:
//! +8.8 % throughput at a 59 µs p99 SLO on the Twitter trace (Figure 8),
//! and +15 % (get), +15–25 % (mget-2), +40.1 % (lrange-2) on 4096-byte YCSB
//! payloads (Table 3).

use cf_net::{FrameMeta, UdpStack, HEADER_BYTES};
use cf_nic::link;
use cf_sim::queueing::{load_ladder, OpenLoopSim, SweepResult};
use cf_sim::{MachineProfile, Sim};
use cornflakes_core::SerializationConfig;

use cf_kv::redis::{client as rclient, RedisBackend, RedisServer};
use cf_workloads::{key_string, TwitterConfig, TwitterOp, TwitterTrace, Zipf};

use crate::harness::large_pool;
use crate::tables::{f1, pct, print_expectation, print_table};

/// A Redis fixture: RESP-speaking client + mini-Redis server.
pub struct RedisBench {
    /// Server machine simulation.
    pub server_sim: Sim,
    /// Client datapath.
    pub client: UdpStack,
    /// The server.
    pub server: RedisServer,
    next_id: u32,
}

impl RedisBench {
    /// Creates a fixture.
    pub fn new(backend: RedisBackend) -> Self {
        let server_sim = Sim::new(MachineProfile::microbench());
        let (cp, sp) = link();
        let client = UdpStack::new(
            Sim::new(MachineProfile::cloudlab_c6525()),
            cp,
            4000,
            SerializationConfig::hybrid(),
        );
        let server_stack = UdpStack::with_pool_config(
            server_sim.clone(),
            sp,
            6379,
            SerializationConfig::hybrid(),
            large_pool(),
        );
        RedisBench {
            server_sim,
            client,
            server: RedisServer::new(server_stack, backend),
            next_id: 1,
        }
    }

    /// Sends one RESP command and returns the reply payload size.
    pub fn command(&mut self, parts: &[&[u8]]) -> u64 {
        let sim = self.client.sim().clone();
        let payload = rclient::encode_command(&sim, parts);
        let mut tx = self.client.alloc_tx(payload.len()).expect("client tx");
        tx.write_at(HEADER_BYTES, &payload);
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let hdr = self.client.header_to(
            6379,
            FrameMeta {
                msg_type: 0,
                flags: 0,
                req_id: id,
            },
        );
        self.client
            .send_built(hdr, tx, payload.len())
            .expect("send");
        self.server.poll();
        self.client
            .recv_packet()
            .map(|p| p.payload.len() as u64)
            .unwrap_or(0)
    }
}

/// Figure 8: the Twitter trace through Redis get/set commands.
pub fn sweep_redis_twitter(backend: RedisBackend, num_keys: u64, duration_ns: u64) -> SweepResult {
    let mut bench = RedisBench::new(backend);
    for id in 0..num_keys {
        let size = TwitterTrace::value_size(id);
        bench
            .server
            .store
            .preload(bench.server.stack.ctx(), key_string(id).as_bytes(), &[size])
            .expect("pool sized");
    }
    let mut trace = TwitterTrace::new(
        TwitterConfig {
            num_keys,
            ..TwitterConfig::default()
        },
        0x3ED15,
    );
    let scratch = vec![0xB7u8; 8192];
    let ol = OpenLoopSim {
        clock: bench.server_sim.clock(),
        seed: 9,
        one_way_wire_ns: 5_000,
        duration_ns,
        warmup_requests: 2_000,
    };
    let drive = |bench: &mut RedisBench, trace: &mut TwitterTrace| match trace.next() {
        TwitterOp::Get { key } => {
            let k = key_string(key);
            bench.command(&[b"GET", k.as_bytes()])
        }
        TwitterOp::Put { key, size } => {
            let k = key_string(key);
            bench.command(&[b"SET", k.as_bytes(), &scratch[..size]])
        }
    };
    let cap = {
        let b = &mut bench;
        let t = &mut trace;
        ol.run_saturated(3_000, |_| drive(b, t)).achieved_rps
    };
    let points = load_ladder(cap * 0.4, cap * 0.99, 6)
        .into_iter()
        .map(|load| {
            bench.server_sim.reset();
            let b = &mut bench;
            let t = &mut trace;
            ol.run(load, |_| drive(b, t))
        })
        .collect();
    SweepResult { points }
}

/// Table 3: max krps per command (4096-byte total payloads, YCSB keys).
pub fn table3_krps(backend: RedisBackend, num_keys: u64, requests: u64) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (i, cmd) in ["get", "mget-2", "lrange-2"].iter().enumerate() {
        let mut bench = RedisBench::new(backend);
        for id in 0..num_keys {
            let key = key_string(id);
            match *cmd {
                // One 4096-byte value.
                "get" => bench
                    .server
                    .store
                    .preload(bench.server.stack.ctx(), key.as_bytes(), &[4096])
                    .expect("pool"),
                // Two keys of 2048 bytes each; mget hits key+1 too.
                "mget-2" => bench
                    .server
                    .store
                    .preload(bench.server.stack.ctx(), key.as_bytes(), &[2048])
                    .expect("pool"),
                // A list value of two 2048-byte buffers.
                _ => bench
                    .server
                    .store
                    .preload(bench.server.stack.ctx(), key.as_bytes(), &[2048, 2048])
                    .expect("pool"),
            }
        }
        let mut zipf = Zipf::new(num_keys, 0.99, 0x2ED15);
        let ol = OpenLoopSim {
            clock: bench.server_sim.clock(),
            seed: 10,
            one_way_wire_ns: 5_000,
            duration_ns: u64::MAX / 4,
            warmup_requests: requests / 10,
        };
        let point = ol.run_saturated(requests, |_| {
            let id = zipf.next();
            let k = key_string(id);
            match *cmd {
                "get" => bench.command(&[b"GET", k.as_bytes()]),
                "mget-2" => {
                    let k2 = key_string((id + 1) % num_keys);
                    bench.command(&[b"MGET", k.as_bytes(), k2.as_bytes()])
                }
                _ => bench.command(&[b"LRANGE", k.as_bytes(), b"0", b"-1"]),
            }
        });
        out[i] = point.achieved_rps / 1e3;
    }
    out
}

/// Runs Figure 8 and Table 3.
pub fn run(num_keys: u64, duration_ns: u64, requests: u64, slo_ns: u64) {
    // Figure 8.
    let resp = sweep_redis_twitter(RedisBackend::Resp, num_keys, duration_ns);
    let cf = sweep_redis_twitter(RedisBackend::Cornflakes, num_keys, duration_ns);
    let rows = vec![
        vec![
            "Redis".to_string(),
            f1(resp.max_achieved_rps() / 1e3),
            f1(resp.rps_at_p99_slo(slo_ns) / 1e3),
        ],
        vec![
            "Redis + Cornflakes".to_string(),
            f1(cf.max_achieved_rps() / 1e3),
            f1(cf.rps_at_p99_slo(slo_ns) / 1e3),
        ],
    ];
    print_table(
        "Figure 8: Redis on the Twitter trace",
        &[
            "Backend",
            "Max krps",
            &format!("krps @ p99<={}us", slo_ns / 1000),
        ],
        &rows,
    );
    let gain = (cf.rps_at_p99_slo(slo_ns) - resp.rps_at_p99_slo(slo_ns))
        / resp.rps_at_p99_slo(slo_ns)
        * 100.0;
    print_expectation(
        "Cornflakes vs Redis serialization at the SLO",
        "+8.8%",
        &pct(gain),
    );

    // Table 3.
    let base = table3_krps(RedisBackend::Resp, num_keys, requests);
    let cfk = table3_krps(RedisBackend::Cornflakes, num_keys, requests);
    let rows: Vec<Vec<String>> = ["get", "mget-2", "lrange-2"]
        .iter()
        .enumerate()
        .map(|(i, cmd)| {
            vec![
                cmd.to_string(),
                f1(base[i]),
                f1(cfk[i]),
                pct((cfk[i] - base[i]) / base[i] * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table 3: Redis commands, 4096 B payloads (max krps)",
        &["Command", "Redis", "Redis+Cornflakes", "Gain"],
        &rows,
    );
    print_expectation("command gains", "+15% to +40.1%", "see table");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cornflakes_improves_redis() {
        let base = table3_krps(RedisBackend::Resp, 4_000, 400);
        let cf = table3_krps(RedisBackend::Cornflakes, 4_000, 400);
        for i in 0..3 {
            let gain = (cf[i] - base[i]) / base[i] * 100.0;
            assert!(
                gain > 5.0,
                "command {i}: Cornflakes should clearly win (gain {gain:.1}%)"
            );
            assert!(gain < 55.0, "command {i}: gain {gain:.1}% implausible");
        }
    }

    #[test]
    fn redis_twitter_gain_in_band() {
        // ~60k keys x ~1.2 KB mean is several times the scaled LLC, as the
        // paper's 4M-key store is several times its 128 MB LLC.
        //
        // The LLC model is keyed off real heap addresses, so concurrently
        // running tests can shift allocations into a degenerate placement;
        // re-measure before declaring the band violated.
        let mut gain = 0.0;
        for attempt in 0..3 {
            let resp = sweep_redis_twitter(RedisBackend::Resp, 60_000, 3_000_000);
            let cf = sweep_redis_twitter(RedisBackend::Cornflakes, 60_000, 3_000_000);
            gain =
                (cf.max_achieved_rps() - resp.max_achieved_rps()) / resp.max_achieved_rps() * 100.0;
            if (1.0..40.0).contains(&gain) {
                return;
            }
            eprintln!("attempt {attempt}: gain {gain:.1}% out of band, remeasuring");
        }
        panic!("Twitter-on-Redis gain {gain:.1}% (paper: 8.8%)");
    }
}
