//! Figure 10: threshold generality across NICs (§6.3).
//!
//! Highest achieved throughput for 1024-byte payloads split into 1–6
//! scatter-gather elements, on an Intel E810 and a Mellanox CX-6 (the E810
//! supports only 8 SG entries, one consumed by the packet header). Paper
//! result: on both NICs, scatter-gather overtakes copy exactly when
//! elements reach 512 bytes — the threshold is NIC-insensitive.

use cf_sim::profile::{CacheConfig, MachineProfile, NicModel};
use cornflakes_core::SerializationConfig;

use super::fig03::microbench_gbps_on;
use crate::tables::{f1, print_expectation, print_table};

fn nic_profile(nic: NicModel) -> MachineProfile {
    MachineProfile {
        name: "milan (scaled LLC)",
        costs: cf_sim::profile::CostModel::cloudlab_c6525(),
        cache: CacheConfig {
            capacity_bytes: 16 << 20,
            ways: 16,
        },
        nic,
    }
}

/// One cell: (entries, copy Gbps, sg Gbps) for a NIC.
pub type NicRow = (usize, f64, f64);

/// Runs the comparison for one NIC.
pub fn run_nic(nic: NicModel, num_keys: u64, requests: u64) -> Vec<NicRow> {
    const TOTAL: usize = 1024;
    let mut rows = Vec::new();
    for &entries in &[1usize, 2, 4, 6] {
        // 6 entries does not divide 1024 evenly; ~170-byte elements keep
        // the total at ~1 KiB, as the paper's figure does.
        let seg = TOTAL / entries;
        let copy = microbench_gbps_on(
            nic_profile(nic),
            SerializationConfig::always_copy(),
            false,
            num_keys,
            entries,
            seg,
            requests,
            requests / 10,
        );
        let sg = microbench_gbps_on(
            nic_profile(nic),
            SerializationConfig::always_zero_copy(),
            false,
            num_keys,
            entries,
            seg,
            requests,
            requests / 10,
        );
        rows.push((entries, copy, sg));
    }
    rows
}

/// Runs Figure 10 on both NICs.
pub fn run(num_keys: u64, requests: u64) -> Vec<(NicModel, Vec<NicRow>)> {
    let mut results = Vec::new();
    for nic in [NicModel::MlxCx6, NicModel::IntelE810] {
        let rows = run_nic(nic, num_keys, requests);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(entries, copy, sg)| {
                vec![
                    format!("{entries} x {}B", 1024 / entries),
                    f1(*copy),
                    f1(*sg),
                    if sg > copy { "sg" } else { "copy" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10: 1024 B payload on {}", nic.name()),
            &["Shape", "Copy Gbps", "SG Gbps", "Winner"],
            &table,
        );
        results.push((nic, rows));
    }
    print_expectation(
        "threshold",
        "SG wins at >=512 B elements on both NICs",
        "see winner columns",
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_holds_on_both_nics() {
        for (nic, rows) in run(20_000, 400) {
            for (entries, copy, sg) in rows {
                let seg = 1024 / entries;
                if seg >= 512 {
                    assert!(
                        sg > copy,
                        "{}: SG should win at {seg}B ({sg:.1} vs {copy:.1})",
                        nic.name()
                    );
                } else if seg <= 256 {
                    assert!(
                        copy > sg,
                        "{}: copy should win at {seg}B ({copy:.1} vs {sg:.1})",
                        nic.name()
                    );
                }
            }
        }
    }

    #[test]
    fn e810_overflow_degrades_to_copy_path() {
        // 1024 B in 8 x 128 B would need 9 entries with the header on the
        // e810 (max 8): the serialize-and-send path degrades to the copy
        // path instead of failing, and the reply still arrives bit-exact.
        // (The experiment grid stops at 6 entries for exactly this reason.)
        use cf_kv::client::client_server_pair;
        use cf_kv::server::SerKind;
        use cf_sim::Sim;
        use cf_telemetry::{Telemetry, TelemetryConfig};
        let server_sim = Sim::new(nic_profile(NicModel::IntelE810));
        let tele = Telemetry::new(server_sim.clock(), TelemetryConfig::default());
        let (mut client, mut server) = client_server_pair(
            server_sim,
            SerKind::Cornflakes,
            SerializationConfig::always_zero_copy(),
            crate::harness::large_pool(),
        );
        server.set_telemetry(&tele);
        server
            .store
            .preload(server.stack.ctx(), b"k", &[128; 8])
            .unwrap();
        client.send_get(&[b"k"]);
        server.poll();
        let resp = client.recv_response().expect("reply via copy fallback");
        assert_eq!(resp.vals.len(), 8);
        assert!(resp.vals.iter().all(|v| v.len() == 128));
        assert_eq!(
            tele.counter_value("net.udp.tx_copy_fallbacks"),
            1,
            "the SG overflow was absorbed by the copy path"
        );
    }
}
