//! Replicated-cluster failover, step by step.
//!
//! Builds a 3-node cluster (R=3) behind the simulated switch, runs a
//! little traffic, kills a node mid-workload, and narrates what the
//! failover machinery does: probe-timeout detection on the survivors,
//! client breaker tripping and re-routing, and catch-up replay when the
//! node rejoins. A flight recorder captures the per-request timeline of
//! the first request that fails over.
//!
//! Run with: `cargo run --example cluster_failover`

use cornflakes::cluster::{Cluster, ClusterClient, ClusterConfig};
use cornflakes::kv::client::RetryConfig;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::FlightRecorder;
use cornflakes::workloads::key_string;

/// Drives one request to a response or a terminal timeout.
fn drive(cluster: &mut Cluster, client: &mut ClusterClient, id: u32) -> bool {
    for _ in 0..300 {
        cluster.poll();
        if let Some(resp) = client.recv_response() {
            assert_eq!(resp.id, Some(id));
            return true;
        }
        cluster.sim().clock().advance(60_000);
        if client.poll_timers().contains(&id) {
            return false;
        }
    }
    panic!("request {id} never concluded");
}

fn main() {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let mut cluster = Cluster::new(
        sim,
        ClusterConfig {
            nodes: 3,
            replication: 3,
            ..ClusterConfig::default()
        },
    );
    let flight = FlightRecorder::with_capacity(4096);
    cluster.set_flight_recorder(&flight);
    let mut client = cluster.client();
    client.set_flight_recorder(&flight);
    client.enable_retries_seeded(
        7,
        RetryConfig {
            timeout_ns: 120_000,
            max_retries: 6,
            max_backoff_ns: 500_000,
            jitter_seed: None,
        },
    );

    let keys: Vec<Vec<u8>> = (0..8).map(|i| key_string(i).into_bytes()).collect();
    for key in &keys {
        cluster.preload(key, &[128]);
    }
    // Probe chatter establishes the membership view.
    for _ in 0..6 {
        cluster.poll();
        cluster.sim().clock().advance(60_000);
    }

    println!("== phase 1: steady state (3 nodes, R=3) ==");
    for (i, key) in keys.iter().enumerate().take(4) {
        let id = client.send_put(key, &[i as u8; 128]);
        let ok = drive(&mut cluster, &mut client, id);
        println!(
            "  put {:?} -> node {} : {}",
            String::from_utf8_lossy(key),
            cluster.map().primary_for(key),
            if ok {
                "acked by all 3 replicas"
            } else {
                "timed out"
            }
        );
    }
    let applied: Vec<u64> = cluster
        .nodes
        .iter()
        .map(|n| n.server.puts_applied())
        .collect();
    println!("  puts applied per node: {applied:?} (R=3: every node holds every put)");

    println!("\n== phase 2: kill node 1 mid-workload ==");
    cluster.kill(1);
    let before = cluster.sim().now();
    let mut served = 0;
    for (i, key) in keys.iter().enumerate() {
        let id = if i % 2 == 0 {
            client.send_get(key)
        } else {
            client.send_put(key, &[0xB0 | i as u8; 128])
        };
        if drive(&mut cluster, &mut client, id) {
            served += 1;
        }
    }
    println!(
        "  {served}/{} requests served while node 1 is down",
        keys.len()
    );
    println!(
        "  client failovers: {} (retransmit fired -> breaker failure -> route rotated)",
        client.failovers()
    );
    println!(
        "  node 1 breaker at the client: {:?}",
        client.breaker_state(1)
    );
    for node in &cluster.nodes {
        if node.id != 1 {
            println!(
                "  node {} sees node 1 alive: {} (probe timeouts)",
                node.id,
                node.peer_alive(1)
            );
        }
    }
    println!(
        "  detection + failover all inside {} virtual us",
        (cluster.sim().now() - before) / 1_000
    );

    println!("\n== phase 3: node 1 rejoins ==");
    cluster.revive(1);
    for _ in 0..40 {
        cluster.poll();
        while client.kv.recv_response().is_some() {}
        cluster.sim().clock().advance(500_000);
        client.poll_timers();
    }
    let replays: u64 = cluster.nodes.iter().map(|n| n.catchup_replays()).sum();
    println!("  catch-up replay re-sent {replays} log entries to the rejoined node");
    let applied: Vec<u64> = cluster
        .nodes
        .iter()
        .map(|n| n.server.puts_applied())
        .collect();
    println!("  puts applied per node: {applied:?} (dedup absorbed the duplicates)");

    println!("\n== flight timeline of a failed-over request ==");
    let records = flight.snapshot();
    if let Some(f) = records.iter().find(|r| r.event.label() == "failover") {
        for r in records.iter().filter(|r| r.req_id == f.req_id) {
            let detail = r
                .event
                .detail()
                .map(|(k, v)| format!(" {k}={v}"))
                .unwrap_or_default();
            println!(
                "  [{:>9} ns] req {} {}{detail}",
                r.ts_ns,
                r.req_id,
                r.event.label()
            );
        }
    }
}
