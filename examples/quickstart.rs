//! Quickstart: the Cornflakes hybrid serialization pipeline in one file.
//!
//! Builds two simulated machines connected by a wire, stores values in
//! pinned (DMA-safe) memory, and sends a multi-get response where large
//! values travel zero-copy as NIC scatter-gather entries while small ones
//! are copied — the paper's Listing 4 flow.
//!
//! Run with: `cargo run --example quickstart`

use cornflakes::core::msgs::GetM;
use cornflakes::core::{CFBytes, CornflakesObj, SerializationConfig};
use cornflakes::net::{FrameMeta, UdpStack};
use cornflakes::nic::link;
use cornflakes::sim::{MachineProfile, Sim};

fn main() {
    // Two machines (client and server), each with its own virtual clock and
    // cache model, connected by a simulated wire.
    let (client_port, server_port) = link();
    let mut client = UdpStack::new(
        Sim::new(MachineProfile::cloudlab_c6525()),
        client_port,
        4000,
        SerializationConfig::hybrid(),
    );
    let server_sim = Sim::new(MachineProfile::cloudlab_c6525());
    let mut server = UdpStack::new(
        server_sim.clone(),
        server_port,
        9000,
        SerializationConfig::hybrid(), // 512-byte zero-copy threshold
    );

    // The server's application data lives in pinned, registered memory, so
    // zero-copy transmission is possible (paper §4.1: "Allocation").
    let mut big_value = server.ctx().pool.alloc(2048).expect("pinned alloc");
    big_value.fill(0xAB);
    let small_value = b"tiny value, cheaper to copy";

    // --- client: send a request --------------------------------------
    let mut request = GetM::new();
    request.id = Some(1);
    request.keys.append(CFBytes::new(client.ctx(), b"big"));
    request.keys.append(CFBytes::new(client.ctx(), b"small"));
    let hdr = client.header_to(
        9000,
        FrameMeta {
            msg_type: 1,
            flags: 0,
            req_id: 1,
        },
    );
    client.send_object(hdr, &request).expect("request sent");

    // --- server: handle it --------------------------------------------
    let pkt = server.recv_packet().expect("request arrives");
    let req = GetM::deserialize(server.ctx(), &pkt.payload).expect("valid request");
    println!(
        "server got request id={:?} with {} keys",
        req.id,
        req.keys.len()
    );

    let mut resp = GetM::new();
    resp.id = req.id;
    resp.init_vals(2);
    {
        let ctx = server.ctx();
        // 2048 B and pinned → zero-copy (an extra scatter-gather entry).
        resp.get_mut_vals()
            .append(CFBytes::new(ctx, big_value.as_slice()));
        // 27 B → copied through the arena into the transmit buffer.
        resp.get_mut_vals().append(CFBytes::new(ctx, small_value));
    }
    println!(
        "response: {} zero-copy entries, {} copied bytes, {} total bytes",
        resp.zero_copy_entries(),
        resp.copy_bytes(),
        resp.object_len()
    );
    assert_eq!(resp.zero_copy_entries(), 1);

    let t0 = server_sim.now();
    server
        .send_object(
            pkt.hdr.reply(FrameMeta {
                msg_type: 0x81,
                flags: 0,
                req_id: 1,
            }),
            &resp,
        )
        .expect("response sent");
    println!(
        "serialize-and-send took {} virtual ns",
        server_sim.now() - t0
    );

    // --- client: verify the reply ---------------------------------------
    let reply = client.recv_packet().expect("reply arrives");
    let resp = GetM::deserialize(client.ctx(), &reply.payload).expect("valid reply");
    assert_eq!(resp.vals.get(0).expect("big").as_slice(), &[0xAB; 2048][..]);
    assert_eq!(resp.vals.get(1).expect("small").as_slice(), small_value);
    println!(
        "client verified {} values ({} payload bytes) — zero-copy worked end to end",
        resp.vals.len(),
        reply.payload.len()
    );
}
