//! Zero-copy memory safety, demonstrated (paper §3, goal 1).
//!
//! Shows the use-after-free guarantee end to end: the application "frees"
//! its buffers right after `send_object`, yet the data stays alive until
//! the NIC completes the DMA — and, over TCP, until the receiver ACKs
//! (surviving retransmission after packet loss).
//!
//! Run with: `cargo run --example memory_safety`

#![allow(clippy::field_reassign_with_default)] // builder-style test setup

use cornflakes::core::msgs::Single;
use cornflakes::core::{CFBytes, CornflakesObj, SerializationConfig};
use cornflakes::net::{FrameMeta, TcpStack, UdpStack};
use cornflakes::nic::{link, FaultPlan};
use cornflakes::sim::{MachineProfile, Sim};

fn udp_demo() {
    println!("== UDP: buffers live until DMA completion ==");
    let (pa, _pb) = link();
    let mut stack = UdpStack::new(
        Sim::new(MachineProfile::cloudlab_c6525()),
        pa,
        9000,
        SerializationConfig::hybrid(),
    );
    stack.set_auto_complete(false); // observe the in-flight window

    let value = stack.ctx().pool.alloc(4096).expect("pinned alloc");
    let mut msg = Single::default();
    msg.val = Some(CFBytes::new(stack.ctx(), value.as_slice()));
    println!("  before send: refcount = {}", value.refcount());

    let hdr = stack.header_to(
        1,
        FrameMeta {
            msg_type: 1,
            flags: 0,
            req_id: 1,
        },
    );
    stack.send_object(hdr, &msg).expect("send");
    drop(msg); // the application frees its object immediately...
    println!(
        "  after send + application drop: refcount = {} (NIC still holds it)",
        value.refcount()
    );
    assert_eq!(value.refcount(), 2);

    stack.poll_completions(); // ...DMA completes...
    println!("  after completion: refcount = {}", value.refcount());
    assert_eq!(value.refcount(), 1);
}

fn tcp_demo() {
    println!("\n== TCP: buffers live until ACK, across retransmission ==");
    let sim = Sim::new(MachineProfile::cloudlab_c6525());
    let (pa, pb) = link();
    let mut a = TcpStack::new(sim.clone(), pa, 1000, SerializationConfig::hybrid());
    let mut b = TcpStack::new(sim.clone(), pb, 2000, SerializationConfig::hybrid());
    a.connect(2000).expect("syn");
    b.poll().expect("syn/ack");
    a.poll().expect("ack");
    b.poll().expect("established");

    let value = a.ctx().pool.alloc(2048).expect("pinned alloc");
    let mut msg = Single::default();
    msg.val = Some(CFBytes::new(a.ctx(), value.as_slice()));
    a.send_object(&msg).expect("send");
    drop(msg);
    println!(
        "  sent, unACKed: refcount = {} (retransmit queue holds it)",
        value.refcount()
    );
    assert_eq!(value.refcount(), 2);

    // The wire eats the segment.
    let faults = b.install_faults(FaultPlan::none());
    assert!(faults.drop_pending(), "segment lost");
    b.poll().expect("nothing arrives");
    assert!(b.recv_msg().expect("rx pool healthy").is_none());

    // RTO fires; the queued buffers are retransmitted.
    sim.clock().advance(300_000);
    a.poll().expect("retransmit");
    b.poll().expect("rx");
    let got = b
        .recv_msg()
        .expect("rx pool healthy")
        .expect("delivered after loss");
    let decoded = Single::deserialize(b.ctx(), &got).expect("valid");
    assert_eq!(decoded.val.expect("val").len(), 2048);
    println!("  retransmission delivered the message after loss");

    a.poll().expect("ack processing");
    println!(
        "  after cumulative ACK: refcount = {} (finally released)",
        value.refcount()
    );
    assert_eq!(value.refcount(), 1);
}

fn main() {
    udp_demo();
    tcp_demo();
    println!("\nno use-after-free possible: frees only release the last reference");
}
