//! A key-value store served with every serialization backend.
//!
//! Spins up the paper's custom KV store four times — Cornflakes, Protobuf,
//! FlatBuffers, Cap'n Proto — on identical data, drives the same queries at
//! each, verifies the responses byte-for-byte, and prints the virtual-time
//! cost per request so the serialization tax is directly visible.
//!
//! Run with: `cargo run --example kv_store`

use cornflakes::core::SerializationConfig;
use cornflakes::kv::client::client_server_pair;
use cornflakes::kv::server::SerKind;
use cornflakes::kv::store::KvStore;
use cornflakes::mem::PoolConfig;
use cornflakes::sim::{MachineProfile, Sim};

fn main() {
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "system", "small (ns)", "2 KiB (ns)", "8 KiB (ns)"
    );
    for kind in SerKind::all() {
        let server_sim = Sim::new(MachineProfile::cloudlab_c6525());
        let (mut client, mut server) = client_server_pair(
            server_sim.clone(),
            kind,
            SerializationConfig::hybrid(),
            PoolConfig::default(),
        );

        // Identical data for every backend.
        server
            .store
            .preload(server.stack.ctx(), b"cfg:motd", &[64])
            .expect("preload");
        server
            .store
            .preload(server.stack.ctx(), b"img:thumb", &[2048])
            .expect("preload");
        server
            .store
            .preload(server.stack.ctx(), b"img:full", &[8192])
            .expect("preload");

        let mut measure = |key: &[u8], expected_len: usize| -> u64 {
            // One warmup round, then a measured one.
            for _ in 0..2 {
                client.send_get(&[key]);
                server.poll();
                let resp = client.recv_response().expect("response");
                assert_eq!(resp.vals.len(), 1, "{kind:?}");
                assert_eq!(resp.vals[0].len(), expected_len, "{kind:?}");
                assert_eq!(
                    resp.vals[0][0],
                    KvStore::expected_fill(key, 0),
                    "{kind:?}: payload must round-trip bit-exactly"
                );
            }
            let t0 = server_sim.now();
            client.send_get(&[key]);
            server.poll();
            client.recv_response().expect("response");
            server_sim.now() - t0
        };

        let small = measure(b"cfg:motd", 64);
        let mid = measure(b"img:thumb", 2048);
        let big = measure(b"img:full", 8192);
        println!("{:<14} {small:>14} {mid:>14} {big:>14}", kind.name());
    }
    println!("\n(Cornflakes's 2 KiB / 8 KiB rows avoid the copies the others pay;");
    println!(" the 64 B row shows the hybrid falling back to cheap copies.)");
}
