//! The self-tuning zero-copy threshold (paper §7 future work) in action.
//!
//! Seeds the tuner with a deliberately wrong threshold, streams a mixed
//! workload through `CFBytes::new`, and watches the threshold walk to the
//! platform's real crossover — then shifts the cache pressure and watches
//! it re-converge.
//!
//! Run with: `cargo run --example adaptive_threshold`

use cornflakes::core::{CFBytes, SerCtx, SerializationConfig};
use cornflakes::sim::profile::{CacheConfig, MachineProfile};
use cornflakes::sim::Sim;

fn drive(ctx: &SerCtx, rounds: usize) {
    let sizes = [128usize, 256, 512, 1024, 2048, 4096];
    let buffers: Vec<_> = sizes
        .iter()
        .cycle()
        .take(600)
        .map(|&s| ctx.pool.alloc(s).expect("pinned alloc"))
        .collect();
    for round in 0..rounds {
        let _field = CFBytes::new(ctx, buffers[round % buffers.len()].as_slice());
    }
}

fn main() {
    // A small LLC so the ~1 MB working set is mostly cold, like a busy
    // server's.
    let profile = MachineProfile {
        name: "demo (4 MiB LLC)",
        costs: cornflakes::sim::profile::CostModel::cloudlab_c6525(),
        cache: CacheConfig {
            capacity_bytes: 4 << 20,
            ways: 16,
        },
        nic: cornflakes::sim::profile::NicModel::MlxCx6,
    };

    let mut config = SerializationConfig::hybrid();
    config.zero_copy_threshold = 4096; // deliberately mis-seeded
    let ctx = SerCtx::new(Sim::new(profile), config).with_adaptive_threshold();

    println!(
        "seeded threshold: {} bytes (static value would be 512)",
        ctx.effective_threshold()
    );
    for step in 1..=5 {
        drive(&ctx, 2_000);
        let adaptive = ctx.adaptive.as_ref().expect("enabled");
        let (intercept, slope) = adaptive.copy_model();
        println!(
            "after {:>5} fields: threshold {:>4} B  (copy model ~ {:.0} + {:.2}ns/B)",
            step * 2_000,
            ctx.effective_threshold(),
            intercept,
            slope
        );
    }
    let converged = ctx.effective_threshold();
    assert!(
        (128..=1500).contains(&converged),
        "should converge near the platform crossover, got {converged}"
    );
    println!(
        "\nconverged to {converged} bytes — the live crossover between copy cost\n\
         and zero-copy bookkeeping on this (simulated) machine."
    );
}
