//! The Cornflakes schema compiler, end to end.
//!
//! Compiles a Protobuf-style schema to Rust source at runtime and prints
//! the generated code — the same pipeline `cf-kv`'s `build.rs` runs at
//! build time (whose output this repository's stores actually use).
//!
//! Run with: `cargo run --example schema_compiler`

const SCHEMA: &str = r#"
// The paper's Listing 1, plus a nested-message example.
syntax = "proto3";
package demo;

message GetM {
    int32 id = 1;
    repeated bytes keys = 2;
    repeated bytes vals = 3;
}

message Entry {
    string key = 1;
    bytes val = 2;
    uint64 version = 3;
}

message Snapshot {
    uint32 shard = 1;
    repeated Entry entries = 2;
    repeated uint64 checksums = 3;
}
"#;

fn main() {
    let code = cornflakes::codegen::compile_schema(SCHEMA).expect("schema compiles");

    // Show a digest of what was generated.
    let structs: Vec<&str> = code
        .lines()
        .filter(|l| l.starts_with("pub struct "))
        .collect();
    let impls = code.matches("impl CornflakesObj for").count();
    println!("generated {} lines of Rust:", code.lines().count());
    for s in &structs {
        println!("  {s}");
    }
    println!(
        "  ({impls} CornflakesObj implementations, {} accessors)",
        code.matches("pub fn ").count()
    );

    println!("\n---- first 60 lines ----");
    for line in code.lines().take(60) {
        println!("{line}");
    }

    // Errors carry line numbers:
    let err = cornflakes::codegen::compile_schema("message Broken { int32 x 5; }")
        .expect_err("bad schema must fail");
    println!("\nerror reporting: {err}");
}
