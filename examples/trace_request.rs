//! Observability tour: trace a request through the whole datapath.
//!
//! Attaches a [`cornflakes::telemetry::Telemetry`] handle to a simulated
//! KV server, serves a handful of GET requests, and writes two artifacts
//! next to the current directory:
//!
//! - `trace.json` — Chrome Trace Event JSON of every request's span tree
//!   (`rx` → `request` → `deserialize`/`app`/`tx`), stamped in **virtual**
//!   nanoseconds. Open it in `chrome://tracing` or <https://ui.perfetto.dev>.
//! - `metrics.json` — a snapshot of the metrics registry: NIC frame/byte
//!   counters, memory-pool occupancy, per-system KV counters, and the
//!   hybrid serializer's copy-vs-zero-copy decision summary.
//!
//! Run with: `cargo run --example trace_request`

use cornflakes::core::SerializationConfig;
use cornflakes::kv::client::client_server_pair;
use cornflakes::kv::server::SerKind;
use cornflakes::mem::PoolConfig;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{json, Telemetry};

fn main() {
    let server_sim = Sim::new(MachineProfile::cloudlab_c6525());
    let (mut client, mut server) = client_server_pair(
        server_sim.clone(),
        SerKind::Cornflakes,
        SerializationConfig::hybrid(),
        PoolConfig::default(),
    );

    // One small (copied) and one large (zero-copy) value, so the decision
    // log shows both sides of the hybrid threshold.
    server
        .store
        .preload(server.stack.ctx(), b"cfg:motd", &[64])
        .expect("preload");
    server
        .store
        .preload(server.stack.ctx(), b"img:full", &[8192])
        .expect("preload");

    // Attach telemetry: installs the charge observer on the server's
    // machine and wires NIC, memory, and per-SerKind counters into the
    // metrics registry.
    let tele = Telemetry::attach(&server_sim);
    server.set_telemetry(&tele);

    for _ in 0..5 {
        for key in [&b"cfg:motd"[..], &b"img:full"[..]] {
            client.send_get(&[key]);
            server.poll();
            client.recv_response().expect("response");
        }
    }

    let trace = tele.chrome_trace_json();
    let metrics = tele.snapshot_json();
    json::validate(&trace).expect("trace is valid JSON");
    json::validate(&metrics).expect("metrics snapshot is valid JSON");
    std::fs::write("trace.json", &trace).expect("write trace.json");
    std::fs::write("metrics.json", &metrics).expect("write metrics.json");

    println!(
        "wrote trace.json   ({} bytes) — open in chrome://tracing",
        trace.len()
    );
    println!("wrote metrics.json ({} bytes)", metrics.len());
    println!();
    for name in [
        "nic.tx_frames",
        "nic.tx_bytes",
        "nic.tx_sg_entries",
        "mem.pool.allocs",
        "kv.cornflakes.requests",
        "kv.cornflakes.zero_copy_entries",
    ] {
        println!("  {name:<32} {}", tele.counter_value(name));
    }
    let (zero_copy, copied) = tele
        .with_decisions(|d| (d.zero_copy, d.copied))
        .expect("telemetry enabled");
    println!("  serializer decisions: {zero_copy} zero-copy, {copied} copied");
    println!();
    println!("Prometheus exposition preview:");
    for line in tele.prometheus_text().lines().take(6) {
        println!("  {line}");
    }
}
