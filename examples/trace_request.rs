//! Observability tour: trace a request through the whole datapath.
//!
//! Attaches a [`cornflakes::telemetry::Telemetry`] handle and a
//! request-scoped [`cornflakes::telemetry::FlightRecorder`] to a simulated
//! KV client/server pair, serves a handful of GET requests, and writes two
//! artifacts next to the current directory:
//!
//! - `trace.json` — Chrome Trace Event JSON of every request's span tree
//!   (`rx` → `request` → `deserialize`/`app`/`tx`), stamped in **virtual**
//!   nanoseconds. Open it in `chrome://tracing` or <https://ui.perfetto.dev>.
//! - `metrics.json` — a snapshot of the metrics registry: NIC frame/byte
//!   counters, memory-pool occupancy, per-system KV counters, and the
//!   hybrid serializer's copy-vs-zero-copy decision summary.
//!
//! It then walks the "diagnose a slow request" workflow from DESIGN.md:
//! the `kv.client.e2e_latency_ns` histogram's exemplars name the slowest
//! request id, the flight recorder replays that request's full event
//! timeline, and consecutive anchors decompose its latency into
//! retry-wait / queueing / sojourn / service / wire phases.
//!
//! Run with: `cargo run --example trace_request`

use cornflakes::core::SerializationConfig;
use cornflakes::kv::client::{KvClient, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::mem::PoolConfig;
use cornflakes::net::UdpStack;
use cornflakes::nic::link;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{json, FlightEvent, FlightRecord, FlightRecorder, Telemetry};

/// Folds one request's flight timeline into `(e2e, [five phase spans])`
/// with a running-maximum clamp, so a missing anchor contributes a
/// zero-length phase and the spans always telescope to the end-to-end
/// latency. (The `tail_anatomy` bench runs the same fold at 2× overload.)
fn decompose(events: &[FlightRecord]) -> Option<(u64, [(&'static str, u64); 5])> {
    let (mut send, mut attempt, mut admit) = (None, None, None);
    let (mut dispatch, mut reply, mut recv) = (None, None, None);
    let keep = |slot: &mut Option<u64>, ts: u64| *slot = Some(slot.map_or(ts, |t: u64| t.max(ts)));
    for r in events {
        match r.event {
            FlightEvent::ClientSend => {
                send.get_or_insert(r.ts_ns);
                keep(&mut attempt, r.ts_ns);
            }
            FlightEvent::ClientRetry { .. } => keep(&mut attempt, r.ts_ns),
            FlightEvent::BacklogAdmit { .. } => keep(&mut admit, r.ts_ns),
            FlightEvent::ShardDispatch { .. } => keep(&mut dispatch, r.ts_ns),
            FlightEvent::Reply { .. } => keep(&mut reply, r.ts_ns),
            FlightEvent::ClientRecv { .. } => keep(&mut recv, r.ts_ns),
            _ => {}
        }
    }
    let (send, recv) = (send?, recv?);
    let mut cursor = send;
    let mut step = |anchor: Option<u64>| {
        let next = cursor.max(anchor.unwrap_or(cursor));
        let delta = next - cursor;
        cursor = next;
        delta
    };
    Some((
        recv.saturating_sub(send),
        [
            ("retry wait", step(attempt)),
            ("queueing", step(admit)),
            ("sojourn", step(dispatch)),
            ("service", step(reply)),
            ("wire", step(Some(recv))),
        ],
    ))
}

fn main() {
    // Client and server share one Sim: every flight stamp reads the same
    // virtual clock, so the printed timeline is totally ordered.
    let sim = Sim::new(MachineProfile::cloudlab_c6525());
    let (cp, sp) = link();
    let client_stack = UdpStack::new(sim.clone(), cp, CLIENT_PORT, SerializationConfig::hybrid());
    let server_stack = UdpStack::with_pool_config(
        sim.clone(),
        sp,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        PoolConfig::default(),
    );
    let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
    let mut server = KvServer::new(server_stack, SerKind::Cornflakes);

    // One small (copied) and one large (zero-copy) value, so the decision
    // log shows both sides of the hybrid threshold.
    server
        .store
        .preload(server.stack.ctx(), b"cfg:motd", &[64])
        .expect("preload");
    server
        .store
        .preload(server.stack.ctx(), b"img:full", &[8192])
        .expect("preload");

    // Attach telemetry: installs the charge observer on the machine and
    // wires NIC, memory, and per-SerKind counters into the registry. The
    // flight recorder is one shared ring; client and server interleave
    // their lifecycle events into a single per-request timeline.
    let tele = Telemetry::attach(&sim);
    server.set_telemetry(&tele);
    let flight = FlightRecorder::with_capacity(4096);
    client.set_flight_recorder(&flight);
    server.set_flight_recorder(&flight);

    let e2e_hist = tele.histogram("kv.client.e2e_latency_ns");
    for _ in 0..5 {
        for key in [&b"cfg:motd"[..], &b"img:full"[..]] {
            let t0 = sim.now();
            let id = client.send_get(&[key]);
            server.poll();
            client.recv_response().expect("response");
            let e2e = sim.now() - t0;
            // Records the value and, per magnitude bucket, remembers the
            // worst request id — linking the histogram tail back to a
            // concrete timeline.
            e2e_hist.record_exemplar(e2e, u64::from(id));
        }
    }

    let trace = tele.chrome_trace_json();
    let metrics = tele.snapshot_json();
    json::validate(&trace).expect("trace is valid JSON");
    json::validate(&metrics).expect("metrics snapshot is valid JSON");
    std::fs::write("trace.json", &trace).expect("write trace.json");
    std::fs::write("metrics.json", &metrics).expect("write metrics.json");

    println!(
        "wrote trace.json   ({} bytes) — open in chrome://tracing",
        trace.len()
    );
    println!("wrote metrics.json ({} bytes)", metrics.len());
    println!();
    for name in [
        "nic.tx_frames",
        "nic.tx_bytes",
        "nic.tx_sg_entries",
        "mem.pool.allocs",
        "kv.cornflakes.requests",
        "kv.cornflakes.zero_copy_entries",
    ] {
        println!("  {name:<32} {}", tele.counter_value(name));
    }
    let (zero_copy, copied) = tele
        .with_decisions(|d| (d.zero_copy, d.copied))
        .expect("telemetry enabled");
    println!("  serializer decisions: {zero_copy} zero-copy, {copied} copied");
    println!();
    println!("Prometheus exposition preview:");
    for line in tele.prometheus_text().lines().take(6) {
        println!("  {line}");
    }

    // The diagnose-a-slow-request workflow: worst exemplar → timeline →
    // phase anatomy.
    let worst = e2e_hist
        .exemplars()
        .into_iter()
        .max_by_key(|e| e.value)
        .expect("exemplars recorded");
    let slow_id = worst.req_id as u32;
    println!();
    println!(
        "slowest request: id {} at {} ns end-to-end (from histogram exemplars)",
        slow_id, worst.value
    );
    let events = flight.events_for(slow_id);
    println!("flight timeline ({} events):", events.len());
    for r in &events {
        match r.event.detail() {
            Some((k, v)) => println!("  {:>9} ns  {} ({k}={v})", r.ts_ns, r.event.label()),
            None => println!("  {:>9} ns  {}", r.ts_ns, r.event.label()),
        }
    }
    let (e2e, phases) = decompose(&events).expect("completed request");
    println!("tail anatomy (phases sum to the {e2e} ns end-to-end latency):");
    for (label, ns) in phases {
        println!("  {label:<12} {ns:>9} ns");
    }
}
