//! Mini-Redis with swappable serialization (paper §6.2.2).
//!
//! Starts the RESP-speaking mini-Redis twice — once with Redis's
//! handwritten serialization, once with Cornflakes responses — runs the
//! same SET/GET/MGET/LRANGE session against both, and prints per-command
//! virtual costs.
//!
//! Run with: `cargo run --example mini_redis`

use cornflakes::core::SerializationConfig;
use cornflakes::kv::redis::{client as redis_client, RedisBackend, RedisServer};
use cornflakes::net::{FrameMeta, UdpStack, HEADER_BYTES};
use cornflakes::nic::link;
use cornflakes::sim::{MachineProfile, Sim};

fn command(client: &mut UdpStack, server: &mut RedisServer, parts: &[&[u8]]) -> Vec<Vec<u8>> {
    let sim = client.sim().clone();
    let payload = redis_client::encode_command(&sim, parts);
    let mut tx = client.alloc_tx(payload.len()).expect("tx");
    tx.write_at(HEADER_BYTES, &payload);
    let hdr = client.header_to(
        6379,
        FrameMeta {
            msg_type: 0,
            flags: 0,
            req_id: 7,
        },
    );
    client.send_built(hdr, tx, payload.len()).expect("send");
    server.poll();
    let pkt = client.recv_packet().expect("reply");
    redis_client::decode_response(&sim, client.ctx(), server.backend, &pkt.payload)
        .expect("decodable reply")
}

fn main() {
    let value = vec![0x42u8; 4096];
    for backend in [RedisBackend::Resp, RedisBackend::Cornflakes] {
        let server_sim = Sim::new(MachineProfile::cloudlab_c6525());
        let (cp, sp) = link();
        let mut client = UdpStack::new(
            Sim::new(MachineProfile::cloudlab_c6525()),
            cp,
            4000,
            SerializationConfig::hybrid(),
        );
        let stack = UdpStack::new(server_sim.clone(), sp, 6379, SerializationConfig::hybrid());
        let mut server = RedisServer::new(stack, backend);

        println!("== {} ==", backend.name());
        // SET builds the list-shaped value too.
        command(&mut client, &mut server, &[b"SET", b"page:1", &value]);
        server
            .store
            .preload(server.stack.ctx(), b"tags", &[2048, 2048])
            .expect("preload list");

        for (label, parts) in [
            ("GET page:1", vec![b"GET".as_slice(), b"page:1"]),
            ("MGET page:1 page:1", vec![b"MGET", b"page:1", b"page:1"]),
            ("LRANGE tags 0 -1", vec![b"LRANGE", b"tags", b"0", b"-1"]),
        ] {
            // Warm, then measure.
            command(&mut client, &mut server, &parts);
            let t0 = server_sim.now();
            let vals = command(&mut client, &mut server, &parts);
            println!(
                "  {label:<22} -> {} values, {:>5} bytes, {:>6} virtual ns",
                vals.len(),
                vals.iter().map(Vec::len).sum::<usize>(),
                server_sim.now() - t0
            );
        }
        // Correctness spot check.
        let got = command(&mut client, &mut server, &[b"GET", b"page:1"]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], value);
        println!("  GET round-trips bit-exactly\n");
    }
}
