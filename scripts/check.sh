#!/usr/bin/env sh
# Repository gate: formatting, lints, and the tier-1 test suite.
#
# Usage: scripts/check.sh [--full]
#   --full  also run the whole workspace test suite (slower).
#
# Everything here runs offline; the workspace has no registry dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> wire-format gates: differential + golden suites"
cargo test -q -p cf-kv --test differential
cargo test -q --test golden
cargo test -q -p cf-nic --test rss_proptests

echo "==> overload smoke: goodput holds past saturation with control on"
cargo test -q -p cf-bench --lib experiments::overload

echo "==> observability gates: zero-alloc flight recorder, metric namespace, tail anatomy"
cargo test -q --test flight_zero_alloc
cargo test -q --test metric_namespace
cargo test -q -p cf-bench --lib experiments::tail_anatomy

echo "==> hot-path gates: allocator-count proofs + bench ratchet (quick preset)"
cargo test -q --test hotpath_zero_alloc
cargo test -q -p cf-bench --lib experiments::hotpath
CF_QUICK=1 cargo bench -p cf-bench --bench hotpath

echo "==> churn gates: bounded flow table + churn bench ratchet (quick preset)"
cargo test -q -p cf-net --test flow_table
cargo test -q --test tcp_churn
cargo test -q -p cf-bench --lib experiments::churn
CF_QUICK=1 cargo bench -p cf-bench --bench churn

echo "==> failover smoke: cluster goodput recovers before the killed node rejoins"
cargo test -q -p cf-bench --lib experiments::failover

echo "==> partition smoke: stale reads under Any, none under Quorum"
cargo test -q -p cf-bench --lib experiments::partition
cargo test -q --test cluster_consistency

if [ "${1:-}" = "--full" ]; then
    echo "==> full: cargo test --workspace -q"
    cargo test --workspace -q
    echo "==> full: cluster chaos soak (both read modes)"
    CF_CHAOS_CASES=64 cargo test -q --test cluster_chaos
    echo "==> full: split-brain consistency soak"
    CF_CHAOS_CASES=64 cargo test -q --test cluster_consistency
fi

echo "All checks passed."
