//! # Cornflakes: zero-copy serialization for microsecond-scale networking
//!
//! A from-scratch Rust reproduction of *Cornflakes: Zero-Copy Serialization
//! for Microsecond-Scale Networking* (Raghavan et al., SOSP 2023).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`sim`] — virtual-time simulation substrate (clock, cache model,
//!   calibrated cost model, open-loop load generator).
//! - [`mem`] — pinned (DMA-safe) memory: region registry, reference-counted
//!   buffers ([`mem::RcBuf`]), arenas.
//! - [`nic`] — simulated scatter-gather NIC (descriptor rings, DMA engine,
//!   Mellanox/Intel profiles).
//! - [`net`] — UDP and TCP datapaths exposing the paper's Listing 2 API
//!   (`alloc` / `recv_packet` / `recover_ptr` / `send_object`).
//! - [`wire`] (in [`core`]) — the Cornflakes hybrid serialization library:
//!   `CFPtr` smart pointers, `CornflakesObj`, the 512-byte zero-copy
//!   threshold heuristic.
//! - [`codegen`] — the schema compiler that generates Cornflakes message
//!   types from Protobuf-style schemas.
//! - [`baselines`] — from-scratch Protobuf-, FlatBuffers-, and Cap'n
//!   Proto-style serializers plus the manual copy baselines of Figure 1.
//! - [`workloads`] — YCSB, Google-distribution, Twitter-cache, and CDN trace
//!   generators.
//! - [`kv`] — the applications: custom key-value store, mini-Redis, echo
//!   server.
//! - [`cluster`] — multi-node replicated KV serving over a simulated
//!   switch: consistent-hash placement, R-way replication, probe-based
//!   failure detection, and client failover.
//! - [`telemetry`] — virtual-time observability: request span tracing with
//!   Chrome-trace export, a metrics registry, and hybrid-serializer
//!   decision logging.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! experiment index.

pub mod chaos_repro;

pub use cf_baselines as baselines;
pub use cf_cluster as cluster;
pub use cf_codegen as codegen;
pub use cf_kv as kv;
pub use cf_mem as mem;
pub use cf_net as net;
pub use cf_nic as nic;
pub use cf_sim as sim;
pub use cf_telemetry as telemetry;
pub use cf_workloads as workloads;
pub use cornflakes_core as core;
