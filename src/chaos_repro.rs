//! Repro artifacts for chaos-test failures.
//!
//! The chaos suites explore seeded fault plans; when a property fails,
//! the panic message alone rarely carries enough to replay the run.
//! [`guard`] wraps one proptest case: if the case body panics, it dumps
//! the case's identity (test name, fault-plan seed, free-form
//! parameters) plus every flight-recorder timeline captured during the
//! run to `target/chaos_repro.json`, then re-raises the panic so the
//! test still fails. Re-running with `CF_CHAOS_SEED=<seed>` style
//! overrides (or just the recorded parameters) reproduces the case
//! deterministically — the artifact is the bridge between "CI went red"
//! and a local replay.
//!
//! CI uploads the file on failure; on success it is never written.

use std::fmt::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use cf_telemetry::FlightRecorder;

/// Where the repro artifact lands: `$CF_REPRO_DIR` or `target/`.
fn repro_path() -> PathBuf {
    let dir = std::env::var("CF_REPRO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target"));
    dir.join("chaos_repro.json")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Serializes every recorded flight event as a JSON array of
/// `{req_id, ts_ns, event, detail_key?, detail?}` objects.
fn flight_json(flight: &FlightRecorder) -> String {
    let mut out = String::from("[");
    for (i, rec) in flight.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"req_id\":{},\"ts_ns\":{},\"event\":\"{}\"",
            rec.req_id,
            rec.ts_ns,
            rec.event.label()
        );
        if let Some((key, val)) = rec.event.detail() {
            let _ = write!(out, ",\"{key}\":{val}");
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Runs `body` as one chaos case. On panic, writes
/// `target/chaos_repro.json` with the test name, the fault-plan `seed`,
/// the free-form `params` (name, value) pairs, the panic message, and
/// the full flight-recorder timeline, then re-raises the panic.
pub fn guard<F: FnOnce()>(
    test: &str,
    seed: u64,
    params: &[(&str, String)],
    flight: &FlightRecorder,
    body: F,
) {
    let result = catch_unwind(AssertUnwindSafe(body));
    let Err(payload) = result else { return };

    let mut doc = String::from("{");
    let _ = write!(doc, "\"test\":\"{}\"", json_escape(test));
    let _ = write!(doc, ",\"seed\":{seed}");
    let _ = write!(
        doc,
        ",\"panic\":\"{}\"",
        json_escape(&panic_message(payload.as_ref()))
    );
    doc.push_str(",\"params\":{");
    for (i, (name, value)) in params.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        let _ = write!(doc, "\"{}\":\"{}\"", json_escape(name), json_escape(value));
    }
    doc.push('}');
    let _ = write!(
        doc,
        ",\"flight_recorded\":{},\"flight_dropped\":{}",
        flight.recorded(),
        flight.dropped()
    );
    let _ = write!(doc, ",\"flight\":{}", flight_json(flight));
    doc.push('}');

    let path = repro_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &doc) {
        Ok(()) => eprintln!("chaos repro artifact written to {}", path.display()),
        Err(e) => eprintln!("failed to write chaos repro artifact: {e}"),
    }
    resume_unwind(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_telemetry::FlightEvent;
    use std::sync::Mutex;

    /// Both tests mutate `CF_REPRO_DIR`; run them one at a time.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn passing_body_writes_nothing() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("cf_repro_pass");
        std::env::set_var("CF_REPRO_DIR", &dir);
        let _ = std::fs::remove_file(dir.join("chaos_repro.json"));
        guard("demo", 1, &[], &FlightRecorder::disabled(), || {});
        assert!(!dir.join("chaos_repro.json").exists());
        std::env::remove_var("CF_REPRO_DIR");
    }

    #[test]
    fn failing_body_dumps_seed_params_and_timelines() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("cf_repro_fail");
        std::env::set_var("CF_REPRO_DIR", &dir);
        let _ = std::fs::remove_file(dir.join("chaos_repro.json"));
        let flight = FlightRecorder::with_capacity(8);
        flight.record(42, 1_000, FlightEvent::ClientSend);
        flight.record(42, 2_000, FlightEvent::Failover { node: 2 });
        let caught = catch_unwind(AssertUnwindSafe(|| {
            guard(
                "demo_fail",
                0xDEAD,
                &[("drop_bp", "150".to_string())],
                &flight,
                || panic!("invariant \"x\" violated"),
            );
        }));
        assert!(caught.is_err(), "guard re-raises the panic");
        let body = std::fs::read_to_string(dir.join("chaos_repro.json")).expect("artifact written");
        std::env::remove_var("CF_REPRO_DIR");
        assert!(body.contains("\"test\":\"demo_fail\""));
        assert!(body.contains(&format!("\"seed\":{}", 0xDEADu64)));
        assert!(body.contains("\"drop_bp\":\"150\""));
        assert!(body.contains("invariant \\\"x\\\" violated"));
        assert!(body.contains("\"event\":\"failover\""));
        assert!(body.contains("\"node\":2"));
        // The artifact is valid JSON by the in-tree parser.
        cf_telemetry::json::parse(&body).expect("artifact parses as JSON");
    }
}
