//! The flight recorder's disabled-path guarantee, proven at the allocator.
//!
//! The shared counting `#[global_allocator]` from
//! `cf_telemetry::alloctrack` wraps the system allocator; each test reads
//! the per-thread allocation count around a hot window. Two claims:
//!
//! - a **disabled** recorder's `record` hook performs *zero* allocations
//!   (and no formatting — events are plain `Copy` structs, so there is
//!   nothing to format until an explicit export call);
//! - an **enabled** recorder adds *zero* allocations to the warm
//!   end-to-end request path: the ring is preallocated at install time
//!   and recording is a fixed-slot copy.
//!
//! The driver is deterministic (virtual clock, same ops in both measured
//! windows), so the enabled window must allocate *exactly* as much as the
//! disabled one — not merely "about as much".

use cornflakes::kv::client::{KvClient, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::net::UdpStack;
use cornflakes::nic::link;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{alloc_count, CountingAlloc, FlightEvent, FlightRecorder};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_record_hook_is_alloc_free() {
    let fr = FlightRecorder::disabled();
    let before = alloc_count();
    for i in 0..10_000u32 {
        fr.record(i, u64::from(i), FlightEvent::ClientSend);
        fr.record(i, u64::from(i), FlightEvent::NicTxEnqueue { queue: 1 });
        fr.record(
            i,
            u64::from(i),
            FlightEvent::ClientRetry {
                attempt: 2,
                backoff_ns: 1_000,
            },
        );
        fr.record(i, u64::from(i), FlightEvent::Reply { flags: 0 });
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a disabled recorder must be one branch per hook, nothing else"
    );
    assert!(!fr.is_enabled() && fr.is_empty());
}

#[test]
fn enabled_recorder_is_alloc_free_after_preallocation() {
    let fr = FlightRecorder::with_capacity(1024);
    let before = alloc_count();
    // 4× capacity: both the fill phase and the wrap-around overwrite
    // phase stay allocation-free.
    for i in 0..4096u32 {
        fr.record(i, u64::from(i), FlightEvent::BacklogAdmit { backlog: 3 });
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "recording into the preallocated ring must never allocate"
    );
    assert_eq!(fr.len(), 1024);
    assert_eq!(fr.recorded(), 4096);
}

/// Client and server on one Sim, like the chaos fixture but fault-free.
fn pair() -> (KvClient, KvServer, Sim) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (cp, sp) = link();
    let client_stack = UdpStack::new(
        sim.clone(),
        cp,
        CLIENT_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
    );
    let server_stack = UdpStack::new(
        sim.clone(),
        sp,
        SERVER_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
    );
    (
        KvClient::new(client_stack, SerKind::Cornflakes),
        KvServer::new(server_stack, SerKind::Cornflakes),
        sim,
    )
}

/// One deterministic round: a put and a get, driven to completion.
fn round(client: &mut KvClient, server: &mut KvServer, value: &[u8]) {
    let put = client.send_put(b"anatomy-key", value);
    server.poll();
    let resp = client.recv_response().expect("put answered");
    assert_eq!(resp.id, Some(put));
    let get = client.send_get(&[b"anatomy-key"]);
    server.poll();
    let resp = client.recv_response().expect("get answered");
    assert_eq!(resp.id, Some(get));
    assert_eq!(resp.vals[0], value);
}

#[test]
fn enabled_recorder_adds_zero_allocations_to_warm_request_path() {
    let (mut client, mut server, _sim) = pair();
    let value = [0x5A_u8; 256];

    // Warm everything: pools, maps, and scratch buffers reach their
    // steady-state footprint (long enough that no container doubles its
    // capacity inside a measured window).
    for _ in 0..128 {
        round(&mut client, &mut server, &value);
    }

    let before = alloc_count();
    for _ in 0..64 {
        round(&mut client, &mut server, &value);
    }
    let baseline = alloc_count() - before;

    // Install the recorder (its ring allocation lands *here*, outside any
    // measured window) and replay the identical deterministic window.
    let fr = FlightRecorder::with_capacity(1 << 14);
    client.set_flight_recorder(&fr);
    server.set_flight_recorder(&fr);

    let before = alloc_count();
    for _ in 0..64 {
        round(&mut client, &mut server, &value);
    }
    let with_recorder = alloc_count() - before;

    assert!(fr.recorded() > 0, "the recorder saw the traffic");
    assert_eq!(
        with_recorder, baseline,
        "recording must not add a single allocation to the warm request path"
    );
}
