//! Zero-alloc steady-state hot path, proven at the allocator.
//!
//! The shared counting `#[global_allocator]` from
//! `cf_telemetry::alloctrack` wraps the system allocator; each test warms
//! a client/server pair until every pool, freelist, and scratch buffer
//! has reached its steady-state footprint, then asserts the measured
//! window performs **zero** heap allocations per request:
//!
//! - GET of a present key (single-segment value),
//! - GET of a missing key (empty reply),
//! - PUT overwriting an existing key (allocate-and-swap reuses the
//!   displaced segment vector; the map already owns the key),
//! - batched multi-GET (8 keys per request),
//! - `SHED` fast-rejects from the admission layer (header-only replies).
//!
//! One path carries a *documented* non-zero budget instead: a PUT
//! inserting a **fresh** key must hand the store an owned copy of the key
//! (plus amortized index growth) — asserted small and bounded.
//!
//! Enabling full telemetry (metrics + span tree) adds **zero** to the
//! warm path as well: the span ring is preallocated at attach time, so
//! recording is a fixed-slot write — asserted directly below, and the
//! flight recorder carries the same proof in `flight_zero_alloc.rs`.
//!
//! Retries, telemetry, and the flight recorder are off in the datapath
//! zero-alloc windows so each layer's claim stands on its own.

use cornflakes::kv::client::{KvClient, Response, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::overload::AdmissionConfig;
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::net::UdpStack;
use cornflakes::nic::link;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{alloc_count, CountingAlloc, Telemetry};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const KEY: &[u8] = b"hotpath-key";
const VALUE: [u8; 256] = [0x5A; 256];
const WARMUP: usize = 256;
const WINDOW: usize = 64;
/// Small dedup window so warmup saturates it: once full, recording a put
/// id evicts the oldest in place and the window's containers stop growing.
const DEDUP_CAPACITY: usize = 128;

/// Client and server on one Sim over a point-to-point link; retries,
/// telemetry, and the flight recorder all disabled.
fn pair() -> (KvClient, KvServer, Sim) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (cp, sp) = link();
    let client_stack = UdpStack::new(
        sim.clone(),
        cp,
        CLIENT_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
    );
    let server_stack = UdpStack::new(
        sim.clone(),
        sp,
        SERVER_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
    );
    let client = KvClient::new(client_stack, SerKind::Cornflakes);
    let mut server = KvServer::new(server_stack, SerKind::Cornflakes);
    server.set_dedup_capacity(DEDUP_CAPACITY);
    (client, server, sim)
}

/// One GET round into a reusable response.
fn get_round(client: &mut KvClient, server: &mut KvServer, keys: &[&[u8]], resp: &mut Response) {
    client.send_get(keys);
    server.poll();
    assert!(client.recv_response_into(resp), "get answered");
}

/// One PUT round into a reusable response.
fn put_round(
    client: &mut KvClient,
    server: &mut KvServer,
    key: &[u8],
    val: &[u8],
    resp: &mut Response,
) {
    client.send_put(key, val);
    server.poll();
    assert!(client.recv_response_into(resp), "put answered");
}

#[test]
fn steady_state_get_hit_is_alloc_free() {
    let (mut client, mut server, _sim) = pair();
    let mut resp = Response::default();
    put_round(&mut client, &mut server, KEY, &VALUE, &mut resp);

    for _ in 0..WARMUP {
        get_round(&mut client, &mut server, &[KEY], &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        get_round(&mut client, &mut server, &[KEY], &mut resp);
        assert_eq!(resp.vals[0], VALUE);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a warm GET round trip (encode, NIC, dispatch, decode, store \
         lookup, reply) must not touch the heap allocator"
    );
}

#[test]
fn steady_state_get_miss_is_alloc_free() {
    let (mut client, mut server, _sim) = pair();
    let mut resp = Response::default();

    for _ in 0..WARMUP {
        get_round(&mut client, &mut server, &[b"absent-key"], &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        get_round(&mut client, &mut server, &[b"absent-key"], &mut resp);
        assert!(resp.vals.is_empty(), "miss carries no values");
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a warm GET miss (empty reply) must not touch the heap allocator"
    );
}

#[test]
fn steady_state_put_overwrite_is_alloc_free() {
    let (mut client, mut server, _sim) = pair();
    let mut resp = Response::default();

    // Warmup saturates the dedup window (WARMUP > DEDUP_CAPACITY), so
    // measured-window inserts evict in place instead of growing it.
    for _ in 0..WARMUP {
        put_round(&mut client, &mut server, KEY, &VALUE, &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        put_round(&mut client, &mut server, KEY, &VALUE, &mut resp);
        assert_eq!(resp.flags, 0, "put applied cleanly");
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a warm PUT overwrite (allocate-and-swap into pooled segments, \
         key already owned by the store) must not touch the heap allocator"
    );
}

#[test]
fn fresh_key_put_allocates_only_the_key_insert() {
    let (mut client, mut server, _sim) = pair();
    let mut resp = Response::default();

    // Warm with fresh keys too, so the datapath side is steady and only
    // the store's ownership costs remain in the measured window.
    let mut keybuf = *b"fresh-key-000000";
    let stamp = |n: usize, buf: &mut [u8; 16]| {
        let digits = format!("{n:06}");
        buf[10..].copy_from_slice(digits.as_bytes());
    };
    for i in 0..WARMUP {
        stamp(i, &mut keybuf);
        put_round(&mut client, &mut server, &keybuf, &VALUE, &mut resp);
    }
    let before = alloc_count();
    for i in 0..WINDOW {
        stamp(WARMUP + i, &mut keybuf);
        put_round(&mut client, &mut server, &keybuf, &VALUE, &mut resp);
    }
    let per_put = (alloc_count() - before) as f64 / WINDOW as f64;
    // Documented budget: the store must copy the key it now owns (1), a
    // fresh entry needs a segment vector when no displaced spare exists
    // (1), plus the `format!` in this driver's key stamping (1) and
    // amortized hash-map growth. Anything beyond ~4/put is a regression.
    assert!(
        per_put >= 1.0,
        "a fresh-key put must copy the key ({per_put}/put)"
    );
    assert!(
        per_put <= 4.0,
        "fresh-key put budget exceeded: {per_put} allocs/put \
         (expected key copy + segment vector + driver stamping only)"
    );
}

#[test]
fn steady_state_batched_get_is_alloc_free() {
    let (mut client, mut server, _sim) = pair();
    let mut resp = Response::default();
    let keys: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("batch-key-{i}").into_bytes())
        .collect();
    let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    for k in &key_refs {
        put_round(&mut client, &mut server, k, &VALUE, &mut resp);
    }

    for _ in 0..WARMUP {
        get_round(&mut client, &mut server, &key_refs, &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        get_round(&mut client, &mut server, &key_refs, &mut resp);
        assert_eq!(resp.vals.len(), 8, "all batch values answered");
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a warm batched multi-GET must not touch the heap allocator"
    );
}

#[test]
fn steady_state_shed_fast_reject_is_alloc_free() {
    let (mut client, mut server, sim) = pair();
    let mut resp = Response::default();
    // A sojourn target of 200µs (default) with the service clock driven
    // 300µs past each arrival: every admitted request expires and is
    // answered with a header-only SHED fast-reject.
    server.enable_admission(AdmissionConfig::default());

    let shed_round = |client: &mut KvClient, server: &mut KvServer, resp: &mut Response| {
        client.send_get(&[KEY]);
        let now = sim.now();
        server.ingest(now);
        server.poll_admitted(now + 300_000);
        assert!(client.recv_response_into(resp), "shed reply delivered");
        assert_ne!(
            resp.flags & cornflakes::kv::flags::SHED,
            0,
            "request was fast-rejected"
        );
    };

    for _ in 0..WARMUP {
        shed_round(&mut client, &mut server, &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        shed_round(&mut client, &mut server, &mut resp);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "a warm SHED fast-reject (no deserialize, no store access, \
         header-only reply) must not touch the heap allocator"
    );
}

#[test]
fn telemetry_enabled_warm_path_is_also_alloc_free() {
    let (mut client, mut server, sim) = pair();
    // Full telemetry: metrics registry + span tree + charge attribution.
    // The span ring and counter cells are allocated at attach/registration
    // time (outside any measured window); recording is fixed-slot writes.
    let tele = Telemetry::attach(&sim);
    client.set_telemetry(&tele);
    server.set_telemetry(&tele);
    let mut resp = Response::default();
    put_round(&mut client, &mut server, KEY, &VALUE, &mut resp);

    for _ in 0..WARMUP {
        get_round(&mut client, &mut server, &[KEY], &mut resp);
    }
    let before = alloc_count();
    for _ in 0..WINDOW {
        get_round(&mut client, &mut server, &[KEY], &mut resp);
    }
    assert_eq!(
        alloc_count() - before,
        0,
        "spans, counters, and charge attribution must stay off the heap \
         allocator on the warm request path — their buffers preallocate \
         at attach time"
    );
}
