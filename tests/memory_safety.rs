//! Workspace-level memory-safety tests: the use-after-free guarantee under
//! adversarial sequencing (paper §3 goal 1, §4.1).

#![allow(clippy::field_reassign_with_default)] // builder-style test setup

use cornflakes::core::msgs::{GetM, Single};
use cornflakes::core::{CFBytes, CornflakesObj, SerializationConfig};
use cornflakes::mem::{PinnedPool, PoolConfig, Registry};
use cornflakes::net::{FrameMeta, TcpStack, UdpStack};
use cornflakes::nic::{link, FaultPlan};
use cornflakes::sim::{MachineProfile, Sim};

fn meta(req_id: u32) -> FrameMeta {
    FrameMeta {
        msg_type: 1,
        flags: 0,
        req_id,
    }
}

#[test]
fn slot_not_recycled_while_dma_pending() {
    // A single-slot pool: if the in-flight reference were dropped early,
    // the next allocation would reuse (and clobber) the slot mid-"DMA".
    let (pa, _pb) = link();
    let mut stack = UdpStack::with_pool_config(
        Sim::new(MachineProfile::tiny_for_tests()),
        pa,
        9000,
        SerializationConfig::always_zero_copy(),
        PoolConfig {
            min_class: 4096,
            max_class: 4096,
            slots_per_region: 1,
            max_regions_per_class: 4,
        },
    );
    stack.set_auto_complete(false);

    let value = stack.ctx().pool.alloc(4096).expect("slot 0");
    let addr = value.addr();
    let mut m = Single::default();
    m.val = Some(CFBytes::new(stack.ctx(), value.as_slice()));
    drop(value); // application's own handle goes away
    let hdr = stack.header_to(1, meta(1));
    stack.send_object(hdr, &m).expect("send");
    drop(m);

    // The slot is still referenced by the NIC; a new allocation must not
    // land on the same address (the pool grows a new region instead).
    let fresh = stack.ctx().pool.alloc(4096).expect("second region");
    assert_ne!(fresh.addr(), addr, "in-flight slot must not be recycled");

    stack.poll_completions();
    drop(fresh);
    // Now the slot is free and may be reused.
    let reused = stack.ctx().pool.alloc(4096).expect("reuse");
    let reused2 = stack.ctx().pool.alloc(4096).expect("other");
    assert!(
        reused.addr() == addr || reused2.addr() == addr,
        "slot is reusable after completion"
    );
}

#[test]
fn overwritten_store_value_survives_inflight_send() {
    // The allocate-and-swap put model: a value replaced mid-send keeps its
    // old buffer alive for the in-flight transmission.
    let (pa, pb) = link();
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let mut server = UdpStack::new(sim.clone(), pa, 9000, SerializationConfig::hybrid());
    let mut client = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        pb,
        4000,
        SerializationConfig::hybrid(),
    );
    server.set_auto_complete(false);

    let mut store = cornflakes::kv::store::KvStore::new(sim);
    store
        .put(server.ctx(), b"k", &[0xAAu8; 2048], 8192)
        .expect("pool has room");

    // Serialize a response referencing the current value.
    let mut resp = GetM::new();
    {
        let ctx = server.ctx();
        let v = store.get(b"k").expect("present");
        resp.vals
            .append(CFBytes::new(ctx, v.segments[0].as_slice()));
    }
    let hdr = server.header_to(4000, meta(9));
    server.send_object(hdr, &resp).expect("send");
    drop(resp);

    // Overwrite the value while the DMA is "in flight".
    store
        .put(server.ctx(), b"k", &[0xBBu8; 2048], 8192)
        .expect("pool has room");

    // The receiver sees the OLD bytes — the send snapshot is intact.
    let pkt = client.recv_packet().expect("frame");
    let d = GetM::deserialize(client.ctx(), &pkt.payload).expect("decode");
    assert_eq!(d.vals.get(0).expect("val").as_slice(), &[0xAAu8; 2048][..]);
    server.poll_completions();

    // New reads serve the new value.
    assert_eq!(
        &*store.get(b"k").expect("present").segments[0],
        &[0xBBu8; 2048][..]
    );
}

#[test]
fn recover_ptr_refuses_dangling_and_foreign_memory() {
    let registry = Registry::new();
    let pool = PinnedPool::new(registry.clone(), PoolConfig::small_for_tests());

    // Live allocation: recoverable, and recovery pins it.
    let buf = pool.alloc(1024).expect("alloc");
    let addr = buf.addr();
    let recovered = registry.recover_addr(addr + 10, 100).expect("recover");
    assert_eq!(buf.refcount(), 2);
    drop(recovered);

    // Freed allocation: a stale pointer must NOT recover.
    drop(buf);
    assert!(
        registry.recover_addr(addr + 10, 100).is_none(),
        "dangling pointers are unrecoverable"
    );

    // Foreign (heap) memory: transparently unrecoverable → copy path.
    let heap = vec![0u8; 256];
    assert!(registry.recover(&heap).is_none());
}

#[test]
fn tcp_retransmission_uses_original_buffers_after_app_mutation_window() {
    // TCP holds the exact buffers until ACK; even if the application drops
    // every handle and the wire loses the segment twice, the retransmitted
    // bytes are the originals.
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (pa, pb) = link();
    let mut a = TcpStack::new(sim.clone(), pa, 1, SerializationConfig::hybrid());
    let mut b = TcpStack::new(sim.clone(), pb, 2, SerializationConfig::hybrid());
    a.connect(2).expect("syn");
    b.poll().expect("synack");
    a.poll().expect("ack");
    b.poll().expect("est");

    {
        let value = a.ctx().pool.alloc(1500).expect("pinned");
        let mut m = Single::default();
        m.val = Some(CFBytes::new(a.ctx(), value.as_slice()));
        a.send_object(&m).expect("send");
        // Both the app's message and its buffer handle die here.
    }
    // Lose the segment twice; retransmit twice.
    let faults = b.install_faults(FaultPlan::none());
    for round in 0..2 {
        assert!(faults.drop_pending(), "segment lost (round {round})");
        b.poll().expect("nothing");
        sim.clock().advance(400_000);
        a.poll().expect("retransmit");
    }
    assert_eq!(a.retransmissions(), 2);
    b.poll().expect("rx");
    let msg = b
        .recv_msg()
        .expect("rx pool healthy")
        .expect("finally delivered");
    let d = Single::deserialize(b.ctx(), &msg).expect("decode");
    assert_eq!(d.val.expect("val").len(), 1500);
    a.poll().expect("ack");
    assert_eq!(a.retransmit_queue_len(), 0);
}

#[test]
fn arena_reset_between_requests_never_corrupts_inflight_copies() {
    // Copied fields live in the arena; end_request() recycles it. In-flight
    // frames already hold their own DMA buffer, so resets are safe at any
    // time — send many requests back to back and verify every frame.
    let (pa, pb) = link();
    let mut tx = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        pa,
        1,
        SerializationConfig::always_copy(),
    );
    let mut rx = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        pb,
        2,
        SerializationConfig::hybrid(),
    );
    for i in 0..50u32 {
        let payload = vec![i as u8; 700];
        let mut m = Single::default();
        m.id = Some(i);
        m.val = Some(CFBytes::new(tx.ctx(), &payload));
        let hdr = tx.header_to(2, meta(i));
        tx.send_object(hdr, &m).expect("send");
    }
    for i in 0..50u32 {
        let pkt = rx.recv_packet().expect("frame");
        let d = Single::deserialize(rx.ctx(), &pkt.payload).expect("decode");
        assert_eq!(d.id, Some(i));
        assert_eq!(d.val.expect("val").as_slice(), &vec![i as u8; 700][..]);
    }
}
