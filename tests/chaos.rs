//! Chaos property test (robustness capstone): YCSB-style key-value traffic
//! over UDP while seeded fault plans drop, duplicate, reorder, corrupt, and
//! delay frames in both directions.
//!
//! Invariants checked for every generated fault plan:
//! - every request ends in exactly one of: a decoded response or a typed
//!   timeout from the client's retry machinery;
//! - retried puts are exactly-once: a put acknowledged clean was applied
//!   precisely once, no matter how many times the wire replayed it;
//! - values read back are always bytes some client write (or the preload)
//!   actually produced — never torn or corrupted data;
//! - when the dust settles, buffer refcounts and pool occupancy return to
//!   baseline: the store owns the only reference to every stored segment
//!   and nothing leaks on either side of the wire.
//!
//! Case count is environment-gated: `CF_CHAOS_CASES=256 cargo test --test
//! chaos` for a soak run; the default stays CI-fast.

use proptest::prelude::*;

use cornflakes::chaos_repro;
use cornflakes::kv::client::{KvClient, ProtectionConfig, RetryConfig, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::flags;
use cornflakes::kv::overload::AdmissionConfig;
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::kv::sharded::ShardedKvServer;
use cornflakes::mem::PoolConfig;
use cornflakes::net::UdpStack;
use cornflakes::nic::{link, FaultPlan};
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{FlightRecorder, Telemetry};
use cornflakes::workloads::{key_string, Ycsb, YcsbConfig};

const NUM_KEYS: u64 = 16;
const VALUE_BYTES: usize = 256;

fn chaos_cases() -> u32 {
    std::env::var("CF_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Client and server share one Sim so retry deadlines, fault delays, and
/// RTOs all read the same virtual clock.
fn chaos_pair() -> (KvClient, KvServer, Sim) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (cp, sp) = link();
    let client_stack = UdpStack::new(
        sim.clone(),
        cp,
        CLIENT_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
    );
    // A deliberately small server pool: heavy in-flight traffic can brush
    // against exhaustion, exercising the degraded paths under fault load.
    let server_stack = UdpStack::with_pool_config(
        sim.clone(),
        sp,
        SERVER_PORT,
        cornflakes::core::SerializationConfig::hybrid(),
        PoolConfig {
            slots_per_region: 4,
            max_regions_per_class: 8,
            ..PoolConfig::small_for_tests()
        },
    );
    (
        KvClient::new(client_stack, SerKind::Cornflakes),
        KvServer::new(server_stack, SerKind::Cornflakes),
        sim,
    )
}

#[derive(Debug, PartialEq)]
enum Outcome {
    Answered { flags: u8, vals: Vec<Vec<u8>> },
    TimedOut,
}

/// Drives one request to its mandatory conclusion: response or timeout.
/// `poll_server` is the server's poll entry point (plain or sharded).
fn drive_with(client: &mut KvClient, poll_server: &mut dyn FnMut(), sim: &Sim, id: u32) -> Outcome {
    for _round in 0..80 {
        poll_server();
        if let Some(resp) = client.recv_response() {
            assert_eq!(resp.id, Some(id), "tracking filters foreign responses");
            return Outcome::Answered {
                flags: resp.flags,
                vals: resp.vals,
            };
        }
        sim.clock().advance(60_000);
        if client.poll_timers().contains(&id) {
            return Outcome::TimedOut;
        }
    }
    panic!("request {id} neither answered nor timed out");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn kv_traffic_survives_arbitrary_fault_plans(
        seed in any::<u64>(),
        drop_bp in 0u32..2000,
        dup_bp in 0u32..2000,
        reorder_bp in 0u32..2000,
        corrupt_bp in 0u32..1500,
        delay_bp in 0u32..2000,
        // One bool per operation: true = put, false = get.
        ops in proptest::collection::vec(any::<bool>(), 12..28),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("drop_bp", drop_bp.to_string()),
            ("dup_bp", dup_bp.to_string()),
            ("reorder_bp", reorder_bp.to_string()),
            ("corrupt_bp", corrupt_bp.to_string()),
            ("delay_bp", delay_bp.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        chaos_repro::guard(
            "chaos::kv_traffic_survives_arbitrary_fault_plans",
            seed,
            &params,
            &flight,
            || {
        let (mut client, mut server, sim) = chaos_pair();
        let tele = Telemetry::attach(&sim);
        server.set_telemetry(&tele);
        client.set_telemetry(&tele);
        server.set_flight_recorder(&flight);
        client.set_flight_recorder(&flight);
        client.enable_retries(RetryConfig { timeout_ns: 100_000, max_retries: 3, ..RetryConfig::default() });

        let mut ycsb = Ycsb::new(
            YcsbConfig {
                num_keys: NUM_KEYS,
                theta: 0.9,
                value_segments: 1,
                segment_size: VALUE_BYTES,
            },
            seed,
        );

        // Preload every key so gets always have a well-known answer, and
        // remember every byte pattern each key could legitimately hold.
        let keys: Vec<Vec<u8>> = (0..NUM_KEYS)
            .map(|i| key_string(i).into_bytes())
            .collect();
        let mut candidates: Vec<Vec<Vec<u8>>> = Vec::new();
        for key in &keys {
            server
                .store
                .preload(server.stack.ctx(), key, &[VALUE_BYTES])
                .expect("preload fits the pool");
            let fill = cornflakes::kv::store::KvStore::expected_fill(key, 0);
            candidates.push(vec![vec![fill; VALUE_BYTES]]);
        }
        let client_baseline = client.stack.ctx().pool.live_slots();

        let p = |bp: u32| f64::from(bp) / 10_000.0;
        let requests = server.stack.install_faults(
            FaultPlan::seeded(seed)
                .with_drop(p(drop_bp))
                .with_duplicate(p(dup_bp))
                .with_reorder(p(reorder_bp))
                .with_corrupt(p(corrupt_bp))
                .with_delay(p(delay_bp), (10_000, 150_000)),
        );
        let responses = client.stack.install_faults(
            FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15)
                .with_drop(p(drop_bp))
                .with_duplicate(p(dup_bp))
                .with_reorder(p(reorder_bp))
                .with_corrupt(p(corrupt_bp))
                .with_delay(p(delay_bp), (10_000, 150_000)),
        );

        let mut answered = 0u64;
        let mut timeouts = 0u64;
        let mut clean_put_acks = 0u64;
        let mut puts_sent = 0u64;
        for (op_idx, &is_put) in ops.iter().enumerate() {
            let key_id = ycsb.next_key() % NUM_KEYS;
            let key = keys[key_id as usize].clone();
            if is_put {
                // A unique, recognizable value per write.
                let val = vec![op_idx as u8 ^ 0xA5; VALUE_BYTES];
                puts_sent += 1;
                let id = client.send_put(&key, &val);
                match drive_with(
                    &mut client,
                    &mut || {
                        server.poll();
                    },
                    &sim,
                    id,
                ) {
                    Outcome::Answered { flags: f, .. } => {
                        answered += 1;
                        if f & flags::DEGRADED == 0 {
                            clean_put_acks += 1;
                            // Only a clean ack promises the write landed.
                            candidates[key_id as usize].push(val);
                        }
                    }
                    Outcome::TimedOut => {
                        timeouts += 1;
                        // Unknown outcome: the put may still have applied.
                        candidates[key_id as usize].push(val);
                    }
                }
            } else {
                let id = client.send_get(&[&key]);
                match drive_with(
                    &mut client,
                    &mut || {
                        server.poll();
                    },
                    &sim,
                    id,
                ) {
                    Outcome::Answered { vals, .. } => {
                        answered += 1;
                        prop_assert_eq!(vals.len(), 1, "one value per get");
                        prop_assert!(
                            candidates[key_id as usize].contains(&vals[0]),
                            "read bytes must match some legitimate write"
                        );
                    }
                    Outcome::TimedOut => timeouts += 1,
                }
            }
        }

        // Every request concluded exactly once.
        prop_assert_eq!(answered + timeouts, ops.len() as u64);
        prop_assert!(client.pending_ids().is_empty());

        // Exactly-once puts: every clean ack corresponds to one apply; the
        // only applies beyond that are puts whose acks were all lost.
        let applied = server.puts_applied();
        prop_assert!(
            applied >= clean_put_acks,
            "applied {applied} < clean acks {clean_put_acks}"
        );
        prop_assert!(
            applied <= puts_sent,
            "applied {applied} > puts sent {puts_sent}: a retry was re-applied"
        );

        // Let straggling delayed frames land and drain stale responses.
        for _ in 0..6 {
            sim.clock().advance(500_000);
            server.poll();
            prop_assert!(client.recv_response().is_none(), "no untracked responses");
        }
        let _ = (requests.stats(), responses.stats());

        // Quiescence: refcounts and pool occupancy back to baseline.
        client.stack.poll_completions();
        server.stack.poll_completions();
        prop_assert_eq!(
            client.stack.ctx().pool.live_slots(),
            client_baseline,
            "client side leaked buffers"
        );
        let mut store_slots = 0usize;
        for key in &keys {
            let value = server.store.get(key).expect("keys never disappear");
            store_slots += value.segments.len();
            for seg in &value.segments {
                prop_assert_eq!(
                    seg.refcount(),
                    1,
                    "store must hold the only reference at rest"
                );
            }
        }
        prop_assert_eq!(
            server.stack.ctx().pool.live_slots(),
            store_slots,
            "server pool occupancy != store contents: leak or early free"
        );
        });
    }

    /// The same chaos invariants with the multi-queue datapath: a sharded
    /// server behind RSS steering, faults hitting the shared wire before
    /// the steering stage. Requests must still conclude exactly once,
    /// puts stay exactly-once *per owning shard*, and no shard ever sees
    /// a request for a key it does not own.
    #[test]
    fn sharded_kv_traffic_survives_arbitrary_fault_plans(
        seed in any::<u64>(),
        queues in 2usize..=4,
        drop_bp in 0u32..2000,
        dup_bp in 0u32..2000,
        reorder_bp in 0u32..2000,
        corrupt_bp in 0u32..1500,
        delay_bp in 0u32..2000,
        ops in proptest::collection::vec(any::<bool>(), 10..20),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("queues", queues.to_string()),
            ("drop_bp", drop_bp.to_string()),
            ("dup_bp", dup_bp.to_string()),
            ("reorder_bp", reorder_bp.to_string()),
            ("corrupt_bp", corrupt_bp.to_string()),
            ("delay_bp", delay_bp.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        chaos_repro::guard(
            "chaos::sharded_kv_traffic_survives_arbitrary_fault_plans",
            seed,
            &params,
            &flight,
            || {
        // Shards share one Sim (one clock) so retry deadlines and fault
        // delays stay coherent with the client's view of time.
        let sim = Sim::new(MachineProfile::tiny_for_tests());
        let (cp, sp) = link();
        let mut server = ShardedKvServer::on_sims(
            vec![sim.clone(); queues],
            sp,
            SerKind::Cornflakes,
            cornflakes::core::SerializationConfig::hybrid(),
            PoolConfig::small_for_tests(),
        );
        let client_stack = UdpStack::new(
            sim.clone(),
            cp,
            CLIENT_PORT,
            cornflakes::core::SerializationConfig::hybrid(),
        );
        let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
        client.enable_steering(&server.rss());
        client.enable_retries(RetryConfig { timeout_ns: 100_000, max_retries: 3, ..RetryConfig::default() });
        server.set_flight_recorder(&flight);
        client.set_flight_recorder(&flight);

        let keys: Vec<Vec<u8>> = (0..NUM_KEYS)
            .map(|i| key_string(i).into_bytes())
            .collect();
        let mut candidates: Vec<Vec<Vec<u8>>> = Vec::new();
        for key in &keys {
            server.preload(key, &[VALUE_BYTES]).expect("preload fits");
            let fill = cornflakes::kv::store::KvStore::expected_fill(key, 0);
            candidates.push(vec![vec![fill; VALUE_BYTES]]);
        }

        let p = |bp: u32| f64::from(bp) / 10_000.0;
        let _requests = server.install_faults(
            FaultPlan::seeded(seed)
                .with_drop(p(drop_bp))
                .with_duplicate(p(dup_bp))
                .with_reorder(p(reorder_bp))
                .with_corrupt(p(corrupt_bp))
                .with_delay(p(delay_bp), (10_000, 150_000)),
        );
        let _responses = client.stack.install_faults(
            FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15)
                .with_drop(p(drop_bp))
                .with_duplicate(p(dup_bp))
                .with_reorder(p(reorder_bp))
                .with_corrupt(p(corrupt_bp))
                .with_delay(p(delay_bp), (10_000, 150_000)),
        );

        let mut ycsb = Ycsb::new(
            YcsbConfig {
                num_keys: NUM_KEYS,
                theta: 0.9,
                value_segments: 1,
                segment_size: VALUE_BYTES,
            },
            seed,
        );
        let mut answered = 0u64;
        let mut timeouts = 0u64;
        let mut clean_put_acks = 0u64;
        let mut puts_sent = 0u64;
        for (op_idx, &is_put) in ops.iter().enumerate() {
            let key_id = ycsb.next_key() % NUM_KEYS;
            let key = keys[key_id as usize].clone();
            if is_put {
                let val = vec![op_idx as u8 ^ 0xA5; VALUE_BYTES];
                puts_sent += 1;
                let id = client.send_put(&key, &val);
                match drive_with(
                    &mut client,
                    &mut || {
                        server.poll();
                    },
                    &sim,
                    id,
                ) {
                    Outcome::Answered { flags: f, .. } => {
                        answered += 1;
                        if f & flags::DEGRADED == 0 {
                            clean_put_acks += 1;
                            candidates[key_id as usize].push(val);
                        }
                    }
                    Outcome::TimedOut => {
                        timeouts += 1;
                        candidates[key_id as usize].push(val);
                    }
                }
            } else {
                let id = client.send_get(&[&key]);
                match drive_with(
                    &mut client,
                    &mut || {
                        server.poll();
                    },
                    &sim,
                    id,
                ) {
                    Outcome::Answered { vals, .. } => {
                        answered += 1;
                        prop_assert_eq!(vals.len(), 1, "one value per get");
                        prop_assert!(
                            candidates[key_id as usize].contains(&vals[0]),
                            "read bytes must match some legitimate write"
                        );
                    }
                    Outcome::TimedOut => timeouts += 1,
                }
            }
        }

        prop_assert_eq!(answered + timeouts, ops.len() as u64);
        prop_assert!(client.pending_ids().is_empty());
        let applied = server.puts_applied();
        prop_assert!(applied >= clean_put_acks);
        prop_assert!(
            applied <= puts_sent,
            "applied {applied} > puts sent {puts_sent}: a retry was re-applied"
        );

        // Let stragglers land, then check shard isolation: each shard
        // stored only keys it owns, and pool occupancy matches its store.
        for _ in 0..6 {
            sim.clock().advance(500_000);
            server.poll();
            prop_assert!(client.recv_response().is_none(), "no untracked responses");
        }
        for (q, shard) in server.shards().iter().enumerate() {
            let mut store_slots = 0usize;
            for key in &keys {
                let owner = server.shard_of(key);
                match shard.store.get(key) {
                    Some(value) => {
                        prop_assert_eq!(
                            owner, q,
                            "shard {} holds a key owned by shard {}", q, owner
                        );
                        store_slots += value.segments.len();
                        for seg in &value.segments {
                            prop_assert_eq!(seg.refcount(), 1);
                        }
                    }
                    None => prop_assert!(
                        owner != q,
                        "shard {} lost a key it owns", q
                    ),
                }
            }
            prop_assert_eq!(
                shard.stack.ctx().pool.live_slots(),
                store_slots,
                "shard pool occupancy != its store contents"
            );
        }
        });
    }

    /// Overload phase: a burst of requests far beyond the admission
    /// backlog is offered at once, the server is throttled to serve less
    /// virtual time than passes between rounds (sustained load above
    /// capacity), and fault plans drop/reorder frames on top. With
    /// admission control and client protection on, every request must
    /// still conclude exactly once — served, shed, or typed timeout —
    /// puts stay exactly-once, and both pools drain to baseline.
    #[test]
    fn overload_burst_with_faults_concludes_every_request(
        seed in any::<u64>(),
        drop_bp in 0u32..1500,
        reorder_bp in 0u32..1500,
        // One bool per burst entry: true = put, false = get. The burst is
        // several times the backlog + rx-ring budget below.
        ops in proptest::collection::vec(any::<bool>(), 24..48),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("drop_bp", drop_bp.to_string()),
            ("reorder_bp", reorder_bp.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        chaos_repro::guard(
            "chaos::overload_burst_with_faults_concludes_every_request",
            seed,
            &params,
            &flight,
            || {
        let (mut client, mut server, sim) = chaos_pair();
        server.set_flight_recorder(&flight);
        client.set_flight_recorder(&flight);
        server.enable_admission(AdmissionConfig {
            backlog_capacity: 8,
            rx_backlog_limit: 16,
            target_sojourn_ns: 150_000,
            ..AdmissionConfig::default()
        });
        client.enable_retries(RetryConfig {
            timeout_ns: 100_000,
            max_retries: 3,
            jitter_seed: Some(seed),
            ..RetryConfig::default()
        });
        client.enable_protection(ProtectionConfig::default());

        let keys: Vec<Vec<u8>> = (0..NUM_KEYS)
            .map(|i| key_string(i).into_bytes())
            .collect();
        let mut candidates: Vec<Vec<Vec<u8>>> = Vec::new();
        for key in &keys {
            server
                .store
                .preload(server.stack.ctx(), key, &[VALUE_BYTES])
                .expect("preload fits the pool");
            let fill = cornflakes::kv::store::KvStore::expected_fill(key, 0);
            candidates.push(vec![vec![fill; VALUE_BYTES]]);
        }
        let client_baseline = client.stack.ctx().pool.live_slots();

        let p = |bp: u32| f64::from(bp) / 10_000.0;
        let _requests = server.stack.install_faults(
            FaultPlan::seeded(seed)
                .with_drop(p(drop_bp))
                .with_reorder(p(reorder_bp)),
        );
        let _responses = client.stack.install_faults(
            FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15)
                .with_drop(p(drop_bp))
                .with_reorder(p(reorder_bp)),
        );

        // Offer the whole burst before the server runs at all.
        let mut ycsb = Ycsb::new(
            YcsbConfig {
                num_keys: NUM_KEYS,
                theta: 0.9,
                value_segments: 1,
                segment_size: VALUE_BYTES,
            },
            seed,
        );
        let mut puts_sent = 0u64;
        let mut ids = std::collections::HashSet::new();
        for (op_idx, &is_put) in ops.iter().enumerate() {
            let key_id = (ycsb.next_key() % NUM_KEYS) as usize;
            let id = if is_put {
                let val = vec![op_idx as u8 ^ 0xA5; VALUE_BYTES];
                puts_sent += 1;
                // Any offered put may land no matter how it concludes.
                candidates[key_id].push(val.clone());
                client.send_put(&keys[key_id], &val)
            } else {
                client.send_get(&[&keys[key_id]])
            };
            prop_assert!(ids.insert((id, key_id)), "request ids are unique");
        }

        // Drive everything to conclusion: each round the server may serve
        // only ~half the virtual time that passes, so the backlog ages and
        // the sojourn shedder gets real work.
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut timeouts = 0u64;
        let mut concluded = std::collections::HashSet::new();
        for _round in 0..400 {
            let now = sim.now();
            server.poll_admitted_until(now, now + 30_000);
            while let Some(resp) = client.recv_response() {
                let id = resp.id.expect("replies echo the request id");
                prop_assert!(concluded.insert(id), "double conclusion for {}", id);
                if resp.flags & flags::SHED != 0 {
                    shed += 1;
                } else {
                    served += 1;
                    if let Some(&(_, key_id)) =
                        ids.iter().find(|&&(rid, _)| rid == id)
                    {
                        if !resp.vals.is_empty() {
                            prop_assert!(
                                candidates[key_id].contains(&resp.vals[0]),
                                "read bytes must match some legitimate write"
                            );
                        }
                    }
                }
            }
            sim.clock().advance(60_000);
            for id in client.poll_timers() {
                prop_assert!(concluded.insert(id), "double conclusion for {}", id);
                timeouts += 1;
            }
            if concluded.len() == ops.len() {
                break;
            }
        }

        // Every request concluded exactly once, one way or another.
        prop_assert_eq!(
            served + shed + timeouts,
            ops.len() as u64,
            "served {} + shed {} + timeouts {} != offered {}",
            served, shed, timeouts, ops.len()
        );
        prop_assert!(client.pending_ids().is_empty());
        // Exactly-once puts: never more applies than puts offered.
        prop_assert!(
            server.puts_applied() <= puts_sent,
            "applied {} > puts sent {}: a retry was re-applied",
            server.puts_applied(), puts_sent
        );
        // Retries stayed within the budget's hard bound.
        let budget = ProtectionConfig::default().budget;
        let bound = budget.capacity + budget.per_request * ops.len() as f64;
        prop_assert!(
            client.retries_sent() as f64 <= bound,
            "retries {} exceed budget bound {}",
            client.retries_sent(), bound
        );

        // Quiescence: stragglers land, pools drain to baseline.
        for _ in 0..6 {
            sim.clock().advance(500_000);
            server.poll();
            prop_assert!(client.recv_response().is_none(), "no untracked responses");
        }
        client.stack.poll_completions();
        server.stack.poll_completions();
        prop_assert_eq!(
            client.stack.ctx().pool.live_slots(),
            client_baseline,
            "client side leaked buffers"
        );
        let mut store_slots = 0usize;
        for key in &keys {
            let value = server.store.get(key).expect("keys never disappear");
            store_slots += value.segments.len();
            for seg in &value.segments {
                prop_assert_eq!(seg.refcount(), 1, "store holds the only reference");
            }
        }
        prop_assert_eq!(
            server.stack.ctx().pool.live_slots(),
            store_slots,
            "server pool occupancy != store contents: leak or early free"
        );
        });
    }
}

/// A server that answers nothing (100% request drop) must not provoke a
/// retry storm: the client's retry budget bounds total retransmissions to
/// `capacity + per_request × fresh`, every request concludes as a typed
/// timeout, and the breaker ends up open.
#[test]
fn retry_storm_is_bounded_by_the_budget() {
    let (mut client, mut server, sim) = chaos_pair();
    client.enable_retries(RetryConfig {
        timeout_ns: 100_000,
        max_retries: 10,
        jitter_seed: Some(7),
        ..RetryConfig::default()
    });
    let protection = ProtectionConfig::default();
    client.enable_protection(protection);
    let _requests = server
        .stack
        .install_faults(FaultPlan::seeded(1).with_drop(1.0));

    const FRESH: u64 = 40;
    for i in 0..FRESH {
        let key = key_string(i % NUM_KEYS).into_bytes();
        client.send_get(&[&key]);
    }
    let mut timeouts = 0u64;
    for _round in 0..4_000 {
        server.poll();
        assert!(client.recv_response().is_none(), "nothing can be answered");
        sim.clock().advance(60_000);
        timeouts += client.poll_timers().len() as u64;
        if timeouts == FRESH {
            break;
        }
    }
    assert_eq!(
        timeouts, FRESH,
        "every request concludes as a typed timeout"
    );
    assert!(client.pending_ids().is_empty());

    // The hard bound: the initial bank plus per-request earnings. Without
    // the budget this run would have sent FRESH × max_retries = 400.
    let bound = protection.budget.capacity + protection.budget.per_request * FRESH as f64;
    assert!(
        client.retries_sent() as f64 <= bound,
        "retry storm: {} retransmissions exceed budget bound {}",
        client.retries_sent(),
        bound
    );
    assert!(
        client.budget_exhausted_count() > 0,
        "the budget actually intervened"
    );
    assert_eq!(
        client.breaker_state(),
        Some(cornflakes::kv::overload::BreakerState::Open),
        "a fully dead server trips the breaker"
    );
}
