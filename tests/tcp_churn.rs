//! Connection-churn survival (robustness tentpole): a TCP-served KV server
//! behind a bounded flow table, attacked by a SYN flood at 10× table
//! capacity, slow-drip readers that park half-finished messages in
//! reassembly, and a connect/close stampede — all while well-behaved
//! clients keep issuing requests.
//!
//! Invariants:
//! - the flow table NEVER exceeds its configured capacity (gauge-asserted
//!   every round);
//! - overflow SYNs are answered with RST and counted, not silently eaten;
//! - well-behaved goodput under attack stays within 80% of the unattacked
//!   baseline;
//! - when the attack stops, the idle reaper returns occupancy to exactly
//!   the well-behaved population, and to zero once they close;
//! - a seeded-fault churn proptest: every request a live connection issued
//!   is answered, occupancy returns to zero after the reap, and the
//!   server pool returns to its baseline occupancy (no leaked buffers).

use proptest::prelude::*;

use cornflakes::chaos_repro;
use cornflakes::core::SerializationConfig;
use cornflakes::kv::tcp_server::{TcpKvClient, TcpKvServer};
use cornflakes::net::tcp::{
    FLAG_ACK, FLAG_FIN, FLAG_SYN, OFF_ACK, OFF_DST, OFF_FLAGS, OFF_SEQ, OFF_SRC,
};
use cornflakes::net::{FlowConfig, TcpListener, TcpStack};
use cornflakes::nic::{FaultPlan, PortHub};
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{FlightRecorder, Telemetry};

const SERVER_PORT: u16 = 9000;
const CAPACITY: usize = 256;
const WELL_BEHAVED: usize = 8;
const ROUNDS: usize = 400;
const TICK_NS: u64 = 250_000;

fn raw_frame(src: u16, seq: u32, ack: u32, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![0u8; 48 + payload.len()];
    f[OFF_SRC..OFF_SRC + 2].copy_from_slice(&src.to_be_bytes());
    f[OFF_DST..OFF_DST + 2].copy_from_slice(&SERVER_PORT.to_be_bytes());
    f[OFF_SEQ..OFF_SEQ + 4].copy_from_slice(&seq.to_le_bytes());
    f[OFF_ACK..OFF_ACK + 4].copy_from_slice(&ack.to_le_bytes());
    f[OFF_FLAGS] = flags;
    f[48..].copy_from_slice(payload);
    f
}

fn churn_rig(cfg: FlowConfig) -> (TcpKvServer, PortHub, Sim, Telemetry) {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (server_wire, trunk) = cornflakes::nic::link();
    let hub = PortHub::new(trunk);
    let listener = TcpListener::new(
        sim.clone(),
        server_wire,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        cfg,
    );
    let mut server = TcpKvServer::new(listener);
    let tele = Telemetry::attach(&sim);
    server.set_telemetry(&tele);
    (server, hub, sim, tele)
}

fn connect(server: &mut TcpKvServer, hub: &mut PortHub, sim: &Sim, port: u16) -> TcpKvClient {
    let stack = TcpStack::new(
        sim.clone(),
        hub.attach(port),
        port,
        SerializationConfig::hybrid(),
    );
    let mut client = TcpKvClient::new(stack);
    client.connect(SERVER_PORT).unwrap();
    hub.pump();
    server.poll().unwrap();
    hub.pump();
    client.poll().unwrap();
    hub.pump();
    server.poll().unwrap();
    assert!(client.is_established());
    client
}

/// Drives `ROUNDS` scheduling quanta of well-behaved KV traffic, with the
/// adversarial trio layered on when `attack` is set. Returns completed
/// request count.
fn run_scenario(attack: bool) -> u64 {
    let cfg = FlowConfig {
        capacity: CAPACITY,
        syn_backlog: 32,
        idle_timeout_ns: 2_000_000,
        ..FlowConfig::default()
    };
    let (mut server, mut hub, sim, tele) = churn_rig(cfg);
    let clock = sim.clock();

    let mut clients: Vec<TcpKvClient> = (0..WELL_BEHAVED as u16)
        .map(|i| connect(&mut server, &mut hub, &sim, 4000 + i))
        .collect();
    // Replies ride an ordered stream but may lag the issue phase by a
    // round, so track outstanding ids as a FIFO per client — including
    // the preload put.
    let mut outstanding: Vec<std::collections::VecDeque<u32>> =
        vec![std::collections::VecDeque::new(); WELL_BEHAVED];
    for (i, c) in clients.iter_mut().enumerate() {
        let id = c
            .put(format!("key-{i}").as_bytes(), &[i as u8; 200])
            .unwrap();
        outstanding[i].push_back(id);
    }

    // Slow-drip readers: raw half-connections that declare a large message
    // and then drip one byte every few rounds, parking bytes in reassembly
    // and keeping the flow just active enough to dodge the idle reaper.
    let drip_ports: Vec<u16> = (0..16u16).map(|i| 5000 + i).collect();
    let mut drip_seq = vec![2u32; drip_ports.len()];
    if attack {
        for (i, &p) in drip_ports.iter().enumerate() {
            hub.inject(raw_frame(p, 1, 0, FLAG_SYN, &[]));
            hub.pump();
            server.poll().unwrap();
            // Handshake ACK carrying a length prefix that promises 60 000
            // bytes the flow will never deliver.
            hub.inject(raw_frame(p, 2, 2, FLAG_ACK, &60_000u32.to_le_bytes()));
            drip_seq[i] = 6;
            hub.pump();
            server.poll().unwrap();
        }
    }

    let mut completed = 0u64;
    let mut flood_port = 30_000u16;
    let mut stampede_port = 20_000u16;

    for round in 0..ROUNDS {
        if attack {
            match round % 3 {
                0 => {
                    // SYN flood: 20 fresh source ports per flood round, for
                    // >2 560 distinct SYNs (10× the 256-slot table) total.
                    for _ in 0..20 {
                        hub.inject(raw_frame(flood_port, 1, 0, FLAG_SYN, &[]));
                        flood_port = flood_port.wrapping_add(1).max(30_000);
                    }
                }
                1 => {
                    // Stampede: full connect + immediate FIN lifecycles.
                    for _ in 0..4 {
                        let p = stampede_port;
                        stampede_port = 20_000 + ((stampede_port - 20_000 + 1) % 96);
                        hub.inject(raw_frame(p, 1, 0, FLAG_SYN, &[]));
                        hub.pump();
                        server.poll().unwrap();
                        hub.inject(raw_frame(p, 2, 2, FLAG_ACK | FLAG_FIN, &[]));
                    }
                }
                _ => {
                    // Drip one more byte on every slow reader.
                    for (i, &p) in drip_ports.iter().enumerate() {
                        hub.inject(raw_frame(p, drip_seq[i], 2, FLAG_ACK, &[0xDD]));
                        drip_seq[i] += 1;
                    }
                }
            }
        }

        for (i, c) in clients.iter_mut().enumerate() {
            if outstanding[i].is_empty() {
                let id = if round % 2 == 0 {
                    c.get(&[format!("key-{i}").as_bytes()]).unwrap()
                } else {
                    c.put(format!("key-{i}").as_bytes(), &[round as u8; 200])
                        .unwrap()
                };
                outstanding[i].push_back(id);
            }
        }
        hub.pump();
        server.poll().unwrap();
        hub.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            c.poll().unwrap();
            while let Some(reply) = c.recv_reply().unwrap() {
                let expected = outstanding[i].pop_front();
                assert_eq!(Some(reply.req_id), expected, "replies arrive in order");
                completed += 1;
            }
        }
        hub.pump();
        server.poll().unwrap();
        clock.advance(TICK_NS);

        // The hard bound, asserted every quantum: the slab never grows.
        let active = tele.gauge("net.tcp.flow.active").get();
        assert!(
            active <= CAPACITY as f64,
            "flow table exceeded capacity: {active} > {CAPACITY}"
        );
        assert!(server.listener.active_flows() <= CAPACITY);
    }

    if attack {
        let stats = server.listener.stats();
        assert!(
            stats.syn_overflow_rsts > 0,
            "the flood must have overflowed the SYN backlog"
        );
        assert!(stats.reaps > 0, "idle flood flows must get reaped");

        // Attack over: keep the well-behaved population chatting while
        // idle timeouts pass — the reaper must evict the flood and drip
        // flows and ONLY those.
        for settle in 0..40 {
            if settle % 4 == 0 {
                for (i, c) in clients.iter_mut().enumerate() {
                    if outstanding[i].is_empty() {
                        let id = c.get(&[format!("key-{i}").as_bytes()]).unwrap();
                        outstanding[i].push_back(id);
                    }
                }
            }
            hub.pump();
            server.poll().unwrap();
            hub.pump();
            for (i, c) in clients.iter_mut().enumerate() {
                c.poll().unwrap();
                while let Some(reply) = c.recv_reply().unwrap() {
                    let expected = outstanding[i].pop_front();
                    assert_eq!(Some(reply.req_id), expected, "replies arrive in order");
                }
            }
            hub.pump();
            server.poll().unwrap();
            clock.advance(TICK_NS);
        }
        assert_eq!(
            server.listener.established_flows(),
            WELL_BEHAVED,
            "only recently-active well-behaved flows survive the reaper"
        );
    }

    // Well-behaved clients hang up; occupancy returns to zero without
    // waiting for any timeout.
    for c in clients.iter_mut() {
        c.stack.close().unwrap();
    }
    hub.pump();
    server.poll().unwrap();
    for _ in 0..40 {
        clock.advance(TICK_NS);
        server.poll().unwrap();
    }
    assert_eq!(server.listener.active_flows(), 0, "all slots returned");
    completed
}

#[test]
fn well_behaved_goodput_survives_the_adversarial_trio() {
    let baseline = run_scenario(false);
    let attacked = run_scenario(true);
    assert!(
        baseline >= ROUNDS as u64, // sanity: the rig actually makes progress
        "baseline goodput implausibly low: {baseline}"
    );
    assert!(
        attacked as f64 >= 0.8 * baseline as f64,
        "well-behaved goodput collapsed under attack: {attacked} vs baseline {baseline}"
    );
}

fn churn_cases() -> u32 {
    std::env::var("CF_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(churn_cases()))]

    /// Seeded-fault churn: connections established cleanly, then faults
    /// drop/duplicate/reorder/delay both directions while clients issue
    /// requests. TCP retransmission must resolve EVERY issued request,
    /// and teardown + reap must return the table and the pool to
    /// baseline.
    #[test]
    fn churned_flows_resolve_and_reap_to_zero_under_faults(
        seed in any::<u64>(),
        drop_bp in 0u32..1500,
        dup_bp in 0u32..1500,
        reorder_bp in 0u32..1500,
        delay_bp in 0u32..1500,
        ops in proptest::collection::vec(any::<bool>(), 6..16),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("drop_bp", drop_bp.to_string()),
            ("dup_bp", dup_bp.to_string()),
            ("reorder_bp", reorder_bp.to_string()),
            ("delay_bp", delay_bp.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        chaos_repro::guard(
            "tcp_churn::churned_flows_resolve_and_reap_to_zero_under_faults",
            seed,
            &params,
            &flight,
            || {
        let cfg = FlowConfig {
            capacity: 16,
            idle_timeout_ns: 50_000_000, // reap only at the very end
            ..FlowConfig::default()
        };
        let (mut server, mut hub, sim, _tele) = churn_rig(cfg);
        server.set_flight_recorder(&flight);
        let clock = sim.clock();
        let pool_baseline = server.listener.ctx().pool.live_slots();

        let mut clients: Vec<TcpKvClient> = (0..3u16)
            .map(|i| connect(&mut server, &mut hub, &sim, 4000 + i))
            .collect();

        // Faults on the server's rx direction only come into effect now —
        // handshakes above ran clean, so every client below is a live,
        // accepted connection whose requests MUST resolve.
        let p = |bp: u32| f64::from(bp) / 10_000.0;
        let _requests = server.listener.install_faults(
            FaultPlan::seeded(seed)
                .with_drop(p(drop_bp))
                .with_duplicate(p(dup_bp))
                .with_reorder(p(reorder_bp))
                .with_delay(p(delay_bp), (10_000, 120_000)),
        );
        let injectors: Vec<_> = clients
            .iter()
            .map(|c| {
                c.stack.install_faults(
                    FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15)
                        .with_drop(p(drop_bp))
                        .with_duplicate(p(dup_bp))
                        .with_reorder(p(reorder_bp))
                        .with_delay(p(delay_bp), (10_000, 120_000)),
                )
            })
            .collect();

        for (op_idx, &is_put) in ops.iter().enumerate() {
            let ci = op_idx % clients.len();
            let key = format!("key-{ci}");
            let id = if is_put {
                clients[ci].put(key.as_bytes(), &[op_idx as u8; 64]).unwrap()
            } else {
                clients[ci].get(&[key.as_bytes()]).unwrap()
            };
            // Drive to mandatory resolution: the RTOs on both sides must
            // push the request and its reply through any fault pattern.
            let mut resolved = false;
            for _ in 0..200 {
                hub.pump();
                server.poll().unwrap();
                hub.pump();
                clients[ci].poll().unwrap();
                if let Some(reply) = clients[ci].recv_reply().unwrap() {
                    assert_eq!(reply.req_id, id, "reply matches the request");
                    resolved = true;
                    break;
                }
                clock.advance(60_000);
            }
            assert!(resolved, "request {id} on client {ci} never resolved");
        }

        // Lift the faults so teardown is observable, then close and reap.
        drop(injectors);
        for c in clients.iter() {
            c.stack.install_faults(FaultPlan::none());
        }
        server.listener.install_faults(FaultPlan::none());
        for c in clients.iter_mut() {
            c.stack.close().unwrap();
        }
        for _ in 0..400 {
            hub.pump();
            server.poll().unwrap();
            clock.advance(250_000);
        }
        assert_eq!(server.listener.active_flows(), 0, "occupancy reaps to zero");
        // The store legitimately owns the segments of values the puts
        // created; everything else must be back.
        let stored_segments: usize = (0..clients.len())
            .filter_map(|ci| server.store.get(format!("key-{ci}").as_bytes()))
            .map(|v| v.segments.len())
            .sum();
        assert_eq!(
            server.listener.ctx().pool.live_slots(),
            pool_baseline + stored_segments,
            "no leaked pool buffers after churn (beyond store-owned segments)"
        );
            },
        );
    }
}
