//! Cluster chaos property test: replicated KV serving (R=3) while a node
//! is killed mid-workload and seeded fault plans mangle the wire.
//!
//! Invariants, for every generated plan:
//! - every request ends in exactly one of: a decoded response or a typed
//!   timeout — killing a node never strands a request;
//! - puts are exactly-once *cluster-wide*: each node applies a given put
//!   at most once no matter how many paths (client retry after failover,
//!   coordinator resend, catch-up replay) delivered a copy;
//! - reads are never torn: every value read back is bytes some write (or
//!   the preload) actually produced, on any replica;
//! - after the dust settles, the client pool returns to baseline and
//!   every shard's pool occupancy equals its store contents.
//!
//! On any failed case, `cornflakes::chaos_repro::guard` dumps the fault
//! seed, case parameters, and the full flight-recorder timeline to
//! `target/chaos_repro.json` for deterministic replay.
//!
//! Case count is gated by `CF_CHAOS_CASES` like `tests/chaos.rs`.

use proptest::prelude::*;

use cornflakes::chaos_repro;
use cornflakes::cluster::{Cluster, ClusterClient, ClusterConfig, ReadMode};
use cornflakes::kv::client::RetryConfig;
use cornflakes::mem::PoolConfig;
use cornflakes::nic::FaultPlan;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::FlightRecorder;
use cornflakes::workloads::{key_string, Ycsb, YcsbConfig};

const NUM_KEYS: u64 = 12;
const VALUE_BYTES: usize = 128;
const NODES: usize = 3;
const R: usize = 3;

fn chaos_cases() -> u32 {
    std::env::var("CF_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn build_cluster() -> Cluster {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    Cluster::new(
        sim,
        ClusterConfig {
            nodes: NODES,
            replication: R,
            pool: PoolConfig::small_for_tests(),
            ..ClusterConfig::default()
        },
    )
}

fn retry_cfg() -> RetryConfig {
    RetryConfig {
        timeout_ns: 120_000,
        max_retries: 6,
        max_backoff_ns: 500_000,
        jitter_seed: None, // seeded per-client via enable_retries_seeded
    }
}

#[derive(Debug, PartialEq)]
enum Outcome {
    Answered { flags: u8, vals: Vec<Vec<u8>> },
    TimedOut,
}

/// Drives one request to its mandatory conclusion.
fn drive(cluster: &mut Cluster, client: &mut ClusterClient, id: u32) -> Outcome {
    for _round in 0..220 {
        cluster.poll();
        if let Some(resp) = client.recv_response() {
            assert_eq!(resp.id, Some(id), "tracking filters foreign responses");
            return Outcome::Answered {
                flags: resp.flags,
                vals: resp.vals,
            };
        }
        cluster.sim().clock().advance(60_000);
        if client.poll_timers().contains(&id) {
            return Outcome::TimedOut;
        }
    }
    panic!("request {id} neither answered nor timed out");
}

/// Runs the cluster with no client traffic (probe/replication chatter,
/// straggling retransmits, catch-up) for `rounds`.
fn settle(cluster: &mut Cluster, client: &mut ClusterClient, rounds: usize) {
    for _ in 0..rounds {
        cluster.poll();
        while client.kv.recv_response().is_some() {}
        cluster.sim().clock().advance(500_000);
        client.poll_timers();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn replicated_cluster_survives_node_kill_mid_workload(
        seed in any::<u64>(),
        drop_bp in 0u32..600,
        dup_bp in 0u32..600,
        delay_bp in 0u32..600,
        victim in 0u8..NODES as u8,
        kill_after in 4usize..8,
        revive in any::<bool>(),
        ops in proptest::collection::vec(any::<bool>(), 14..24),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("drop_bp", drop_bp.to_string()),
            ("dup_bp", dup_bp.to_string()),
            ("delay_bp", delay_bp.to_string()),
            ("victim", victim.to_string()),
            ("kill_after", kill_after.to_string()),
            ("revive", revive.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        let flight_for_guard = flight.clone();
        // Same seeds, both read modes: every invariant below is
        // consistency-policy-agnostic and must hold for each.
        chaos_repro::guard(
            "cluster_chaos::replicated_cluster_survives_node_kill_mid_workload",
            seed,
            &params,
            &flight_for_guard,
            move || {
                for mode in [ReadMode::Any, ReadMode::Quorum] {
                    run_case(
                        seed, mode, drop_bp, dup_bp, delay_bp, victim, kill_after, revive, &ops,
                        flight.clone(),
                    );
                }
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    seed: u64,
    mode: ReadMode,
    drop_bp: u32,
    dup_bp: u32,
    delay_bp: u32,
    victim: u8,
    kill_after: usize,
    revive: bool,
    ops: &[bool],
    flight: FlightRecorder,
) {
    let mut cluster = build_cluster();
    cluster.set_flight_recorder(&flight);
    let mut client = cluster.client();
    client.set_flight_recorder(&flight);
    client.enable_retries_seeded(seed, retry_cfg());
    client.set_read_mode(mode);

    // Preload every key on all its replicas; track every byte pattern a
    // key could legitimately hold (the candidate set only grows — a
    // rejoined replica may legally serve any earlier value).
    let keys: Vec<Vec<u8>> = (0..NUM_KEYS).map(|i| key_string(i).into_bytes()).collect();
    let mut candidates: Vec<Vec<Vec<u8>>> = Vec::new();
    for key in &keys {
        cluster.preload(key, &[VALUE_BYTES]);
        let fill = cornflakes::kv::store::KvStore::expected_fill(key, 0);
        candidates.push(vec![vec![fill; VALUE_BYTES]]);
    }
    let client_baseline = client.kv.stack.ctx().pool.live_slots();

    // Seeded wire chaos: on the client's receive direction and on every
    // node's NIC receive direction (hitting client puts, REPL traffic,
    // and probes alike).
    let p = |bp: u32| f64::from(bp) / 10_000.0;
    let _client_rx = client.kv.stack.install_faults(
        FaultPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15)
            .with_drop(p(drop_bp))
            .with_duplicate(p(dup_bp))
            .with_delay(p(delay_bp), (10_000, 120_000)),
    );
    let mut node_rx = Vec::new();
    for n in 0..NODES as u8 {
        node_rx.push(
            cluster.install_faults_at(
                n,
                FaultPlan::seeded(seed.wrapping_add(u64::from(n) + 1))
                    .with_drop(p(drop_bp))
                    .with_duplicate(p(dup_bp))
                    .with_delay(p(delay_bp), (10_000, 120_000)),
            ),
        );
    }

    // Let probes establish a steady state before traffic.
    for _ in 0..6 {
        cluster.poll();
        cluster.sim().clock().advance(60_000);
    }

    let mut ycsb = Ycsb::new(
        YcsbConfig {
            num_keys: NUM_KEYS,
            theta: 0.9,
            value_segments: 1,
            segment_size: VALUE_BYTES,
        },
        seed,
    );
    let mut answered = 0u64;
    let mut timeouts = 0u64;
    let mut clean_put_acks = 0u64;
    let mut puts_sent = 0u64;
    let mut killed = false;
    let revive_after = kill_after + 5;
    for (op_idx, &is_put) in ops.iter().enumerate() {
        if op_idx == kill_after {
            cluster.kill(victim);
            killed = true;
        }
        if revive && op_idx == revive_after {
            cluster.revive(victim);
        }
        let key_id = (ycsb.next_key() % NUM_KEYS) as usize;
        let key = keys[key_id].clone();
        if is_put {
            let val = vec![op_idx as u8 ^ 0x5A; VALUE_BYTES];
            puts_sent += 1;
            let id = client.send_put(&key, &val);
            match drive(&mut cluster, &mut client, id) {
                Outcome::Answered { flags: f, .. } => {
                    answered += 1;
                    // SHED = a minority-islanded coordinator refused the
                    // put before applying; DEGRADED = applied somewhere
                    // but not everywhere. Neither is a clean ack.
                    if f == 0 {
                        clean_put_acks += 1;
                    }
                    // Even a refused/degraded put may have applied on some
                    // replica along a rotated path.
                    candidates[key_id].push(val);
                }
                Outcome::TimedOut => {
                    timeouts += 1;
                    // Unknown outcome: the put may have landed anywhere.
                    candidates[key_id].push(val);
                }
            }
        } else {
            let id = client.send_get(&key);
            match drive(&mut cluster, &mut client, id) {
                Outcome::Answered { flags: f, vals } => {
                    answered += 1;
                    if f == 0 {
                        prop_assert_eq!(vals.len(), 1, "one value per get");
                        prop_assert!(
                            candidates[key_id].contains(&vals[0]),
                            "torn read: bytes match no legitimate write"
                        );
                    }
                }
                Outcome::TimedOut => timeouts += 1,
            }
        }
    }
    prop_assert!(killed, "the kill point fires inside the workload");

    // Every request concluded exactly once.
    prop_assert_eq!(answered + timeouts, ops.len() as u64);
    prop_assert!(client.kv.pending_ids().is_empty());

    // Exactly-once cluster-wide: each node's dedup window admits a put at
    // most once, so total applies are bounded by puts × replicas; and the
    // coordinator applied every cleanly-acked put at least once.
    let applied = cluster.total_puts_applied();
    prop_assert!(
        applied <= puts_sent * R as u64,
        "applied {applied} > {puts_sent} puts x {R} replicas: some replica re-applied a retry"
    );
    prop_assert!(
        applied >= clean_put_acks,
        "applied {applied} < clean acks {clean_put_acks}"
    );
    for node in &cluster.nodes {
        prop_assert!(
            node.server.puts_applied() <= puts_sent,
            "node {} applied more puts than were ever sent",
            node.id
        );
    }

    // Quiescence: revive the victim (if still dead) so in-flight resends
    // can conclude, let pending replications complete or abandon, then
    // check pools. The abandon window is 5 ms; settle for ~10 ms.
    cluster.revive(victim);
    settle(&mut cluster, &mut client, 20);
    for node in &mut cluster.nodes {
        prop_assert_eq!(node.pending_repl(), 0, "pending replication drained");
        for shard in node.server.shards_mut() {
            shard.stack.poll_completions();
        }
    }
    client.kv.stack.poll_completions();
    prop_assert_eq!(
        client.kv.stack.ctx().pool.live_slots(),
        client_baseline,
        "client side leaked buffers"
    );
    for node in &mut cluster.nodes {
        let id = node.id;
        for q in 0..node.server.num_shards() {
            let shard = &node.server.shards()[q];
            let mut store_slots = 0usize;
            for key in &keys {
                if let Some(value) = shard.store.get(key) {
                    store_slots += value.segments.len();
                    for seg in &value.segments {
                        prop_assert_eq!(
                            seg.refcount(),
                            1,
                            "store holds the only reference at rest"
                        );
                    }
                }
            }
            prop_assert_eq!(
                shard.stack.ctx().pool.live_slots(),
                store_slots,
                "node {id} shard {q}: pool occupancy != store contents (leak or early free)"
            );
        }
    }
}

/// Deterministic availability check (no random faults): kill a node
/// mid-workload and require the cluster to keep answering — every
/// post-kill request resolves as a response, not a timeout, once the
/// client's failover machinery has rotated off the dead node.
#[test]
fn cluster_keeps_serving_while_a_node_is_down() {
    keeps_serving_while_a_node_is_down(ReadMode::Any);
}

/// Quorum reads survive the same kill: two of three replicas are a
/// majority, so availability is unchanged under the stronger mode.
#[test]
fn cluster_keeps_serving_at_quorum_while_a_node_is_down() {
    keeps_serving_while_a_node_is_down(ReadMode::Quorum);
}

fn keeps_serving_while_a_node_is_down(mode: ReadMode) {
    let mut cluster = build_cluster();
    let mut client = cluster.client();
    client.enable_retries_seeded(23, retry_cfg());
    client.set_read_mode(mode);

    let keys: Vec<Vec<u8>> = (0..NUM_KEYS).map(|i| key_string(i).into_bytes()).collect();
    for key in &keys {
        cluster.preload(key, &[VALUE_BYTES]);
    }
    for _ in 0..6 {
        cluster.poll();
        cluster.sim().clock().advance(60_000);
    }

    // Warm traffic, then kill node 1.
    for (i, key) in keys.iter().enumerate().take(4) {
        let id = client.send_put(key, &[i as u8; VALUE_BYTES]);
        assert!(
            matches!(
                drive(&mut cluster, &mut client, id),
                Outcome::Answered { .. }
            ),
            "pre-kill puts answer"
        );
    }
    cluster.kill(1);

    let mut post_kill_answered = 0u64;
    for (i, key) in keys.iter().enumerate() {
        let id = if i % 2 == 0 {
            client.send_get(key)
        } else {
            client.send_put(key, &[0xB0 | i as u8; VALUE_BYTES])
        };
        if matches!(
            drive(&mut cluster, &mut client, id),
            Outcome::Answered { .. }
        ) {
            post_kill_answered += 1;
        }
    }
    assert_eq!(
        post_kill_answered,
        keys.len() as u64,
        "every post-kill request is served by the surviving replicas"
    );
    assert!(
        client.failovers() >= 1,
        "requests routed to the dead node failed over"
    );
}
