//! Golden wire-format snapshots: byte-exact fixtures for representative
//! frames, checked into `tests/golden/*.bin`.
//!
//! Every frame the datapath puts on the wire is deterministic — same
//! requests, same bytes — so the exact frames are pinned as fixtures.
//! A wire-format change (header layout, serialization framing, FCS, TCP
//! segment fields) fails these tests with the first differing offset
//! named, instead of silently breaking cross-version compatibility.
//!
//! Regenerate the fixtures deliberately with:
//!
//! ```text
//! CF_BLESS=1 cargo test --test golden
//! ```
//!
//! and review the resulting `.bin` diffs like any other code change.
//!
//! The fixtures also lock the acceptance criterion that a single-queue
//! multi-queue configuration is wire-identical to the original
//! single-ring datapath: the sharded server's reply must match the plain
//! server's golden reply byte for byte.

use std::path::PathBuf;

use cornflakes::core::SerializationConfig;
use cornflakes::kv::client::{client_server_pair, KvClient, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::kv::sharded::ShardedKvServer;
use cornflakes::kv::{flags, store::KvStore};
use cornflakes::mem::PoolConfig;
use cornflakes::net::{TcpStack, UdpStack};
use cornflakes::nic::{fcs_ok, link, Frame, Port, FCS_OFFSET};
use cornflakes::sim::{MachineProfile, Sim};

/// Frame-header offsets pinned by the fixtures (see `cf-net`).
const OFF_VERSION: usize = 24;
const OFF_MSG_TYPE: usize = 42;
const OFF_FLAGS: usize = 43;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `bytes` against the checked-in fixture `name`, or rewrites
/// the fixture when `CF_BLESS=1`. Every fixture must also carry a valid
/// FCS — the NIC seals each gathered frame, and the fixture pins that.
fn check_golden(name: &str, bytes: &[u8]) {
    assert!(
        bytes.len() >= FCS_OFFSET + 4 && fcs_ok(bytes),
        "{name}: captured frame must carry a valid FCS"
    );
    let path = golden_dir().join(name);
    if std::env::var_os("CF_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("fixture dir");
        std::fs::write(&path, bytes).expect("bless fixture");
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|_| {
        panic!("missing fixture {name}: run `CF_BLESS=1 cargo test --test golden` and commit tests/golden/{name}")
    });
    if expected != bytes {
        let first_diff = expected
            .iter()
            .zip(bytes.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(bytes.len()));
        panic!(
            "{name}: wire format drifted: fixture {} bytes, captured {} bytes, \
             first difference at offset {} (fixture {:#04x} vs captured {:#04x}); \
             if intentional, re-bless with CF_BLESS=1 and review the diff",
            expected.len(),
            bytes.len(),
            first_diff,
            expected.get(first_diff).copied().unwrap_or(0),
            bytes.get(first_diff).copied().unwrap_or(0),
        );
    }
}

/// Pulls the next frame off `tap` (a clone of the receiving end's port),
/// snapshots it, and pushes it back on the wire via `reinject` (a clone
/// of the *sending* end, whose tx is the same channel) so the datapath
/// under test still sees it.
fn capture(name: &str, tap: &Port, reinject: &Port) -> Vec<u8> {
    let frame = tap
        .recv()
        .unwrap_or_else(|| panic!("{name}: no frame on the wire"));
    let bytes = frame.data.clone();
    check_golden(name, &bytes);
    reinject.send(frame);
    bytes
}

/// A deterministic client/server pair with taps on both wire directions:
/// returns (client, server, client_port_tap, server_port_tap).
fn tapped_pair(kind: SerKind) -> (KvClient, KvServer, Port, Port) {
    let (cp, sp) = link();
    let (cp_tap, sp_tap) = (cp.clone(), sp.clone());
    let client_sim = Sim::new(MachineProfile::tiny_for_tests());
    let server_sim = Sim::new(MachineProfile::tiny_for_tests());
    let client_stack = UdpStack::new(client_sim, cp, CLIENT_PORT, SerializationConfig::hybrid());
    let server_stack = UdpStack::with_pool_config(
        server_sim,
        sp,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    (
        KvClient::new(client_stack, kind),
        KvServer::new(server_stack, kind),
        cp_tap,
        sp_tap,
    )
}

#[test]
fn udp_cornflakes_frames_match_fixtures() {
    let (mut client, mut server, cp_tap, sp_tap) = tapped_pair(SerKind::Cornflakes);
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[256])
        .unwrap();
    server
        .store
        .preload(server.stack.ctx(), b"seg", &[64, 64])
        .unwrap();

    // GET request (req_id 1) and its zero-copy reply.
    client.send_get(&[b"key-a"]);
    capture("udp_get_request.bin", &sp_tap, &cp_tap);
    assert_eq!(server.poll(), 1);
    capture("udp_get_response.bin", &cp_tap, &sp_tap);
    let resp = client.recv_response().expect("get reply");
    assert_eq!(resp.vals.len(), 1);
    assert_eq!(resp.vals[0][0], KvStore::expected_fill(b"key-a", 0));

    // PUT request (req_id 2).
    client.send_put(b"key-b", &[0x42u8; 64]);
    capture("udp_put_request.bin", &sp_tap, &cp_tap);
    server.poll();
    client.recv_response().expect("put ack");

    // GET_SEGMENT request (req_id 3) carrying the auxiliary index field.
    client.send_get_segment(b"seg", 1);
    capture("udp_get_segment_request.bin", &sp_tap, &cp_tap);
    server.poll();
    let resp = client.recv_response().expect("segment reply");
    assert_eq!(resp.vals.len(), 1);
}

#[test]
fn protolite_response_matches_fixture() {
    // A copy-serializer reply pins the baseline wire format too: the
    // differential suite proves systems agree on *fields*, this fixture
    // pins protolite's exact *bytes* inside a frame.
    let (mut client, mut server) = client_server_pair(
        Sim::new(MachineProfile::tiny_for_tests()),
        SerKind::Protobuf,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    let client_tap = client.stack.nic().borrow().port().clone();
    let server_tap = server.stack.nic().borrow().port().clone();
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[256])
        .unwrap();
    client.send_get(&[b"key-a"]);
    server.poll();
    // Receiving on the client's port pulls the reply; sending on the
    // server's port puts it back on the same channel.
    let frame = client_tap.recv().expect("protolite reply on the wire");
    check_golden("udp_get_response_protolite.bin", &frame.data);
    server_tap.send(frame);
    let resp = client.recv_response().expect("protolite reply decodes");
    assert_eq!(resp.vals.len(), 1);
}

#[test]
fn degraded_put_reply_matches_fixture() {
    let (mut client, mut server, cp_tap, sp_tap) = tapped_pair(SerKind::Cornflakes);
    // Saturate the store's size class so the put cannot allocate (same
    // trigger as the e2e degradation test): the reply must carry
    // flags::DEGRADED on the wire.
    server.put_segment_size = 600;
    server
        .store
        .preload(server.stack.ctx(), b"k", &[600])
        .unwrap();
    let mut filler = 0u32;
    while server
        .store
        .preload(
            server.stack.ctx(),
            format!("filler-{filler}").as_bytes(),
            &[600],
        )
        .is_ok()
    {
        filler += 1;
    }
    client.send_put(b"k", &[0x5Cu8; 1500]);
    // Let the request through untouched; snapshot only the reply.
    let req = sp_tap.recv().expect("put request");
    cp_tap.send(req);
    server.poll();
    let bytes = capture("udp_degraded_put_reply.bin", &cp_tap, &sp_tap);
    assert_eq!(
        bytes[OFF_FLAGS] & flags::DEGRADED,
        flags::DEGRADED,
        "DEGRADED flag is on the wire"
    );
    let resp = client.recv_response().expect("degraded ack");
    assert_eq!(resp.flags, flags::DEGRADED);
}

#[test]
fn shed_fast_reject_matches_fixture() {
    let (mut client, mut server, cp_tap, sp_tap) = tapped_pair(SerKind::Cornflakes);
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[256])
        .unwrap();
    server.enable_admission(cornflakes::kv::overload::AdmissionConfig {
        target_sojourn_ns: 100_000,
        ..Default::default()
    });
    client.send_get(&[b"key-a"]);
    // Ingest only — the horizon is already reached, so nothing is served
    // and the request sits in the admission backlog.
    let now = server.stack.sim().now();
    server.poll_admitted_until(now, now);
    assert_eq!(server.backlog_len(), 1, "request admitted but unserved");
    // The shard stalls past the sojourn target; the next poll sheds the
    // aged entry with a header-only SHED fast-reject.
    server.stack.sim().clock().advance(200_000);
    server.poll();
    assert_eq!(server.shed_drops(), 1);
    let bytes = capture("udp_shed_reply.bin", &cp_tap, &sp_tap);
    assert_eq!(
        bytes[OFF_FLAGS] & flags::SHED,
        flags::SHED,
        "SHED flag is on the wire"
    );
    let resp = client.recv_response().expect("shed reply decodes");
    assert_eq!(resp.flags, flags::SHED);
    assert!(resp.vals.is_empty(), "fast reject carries no payload");
}

#[test]
fn versioned_cluster_frames_match_fixtures() {
    // The cluster layer's versioned values ride the previously-reserved
    // header bytes at OFF_VERSION. Two fixtures pin that wire contract:
    // a GET reply for a key with a cluster-assigned version, and the
    // read-repair REPL_PUT a quorum-mode client pushes at a stale
    // replica.
    let (mut client, mut server, cp_tap, sp_tap) = tapped_pair(SerKind::Cornflakes);
    let (apply_flags, applied) = server.apply_versioned_put(99, b"key-a", &[0x7A; 64], 3);
    assert_eq!(apply_flags, 0, "versioned apply succeeds");
    assert!(applied, "a fresh versioned apply writes the store");

    client.send_get(&[b"key-a"]);
    let req = sp_tap.recv().expect("get request");
    cp_tap.send(req);
    server.poll();
    let bytes = capture("udp_versioned_get_reply.bin", &cp_tap, &sp_tap);
    assert_eq!(bytes[OFF_VERSION], 3, "reply carries the key's version");
    let resp = client.recv_response().expect("versioned reply decodes");
    assert_eq!(resp.version, 3);
    assert_eq!(resp.vals, vec![vec![0x7A; 64]]);

    // The read-repair frame: an ordinary PUT payload under REPL_PUT with
    // the repairing version in the header and a fresh, untracked req id.
    client.send_repair_put(b"key-a", &[0x7A; 64], 3);
    let frame = sp_tap.recv().expect("read-repair frame on the wire");
    check_golden("udp_read_repair_repl_put.bin", &frame.data);
    assert_eq!(frame.data[OFF_MSG_TYPE], 5, "msg_type REPL_PUT");
    assert_eq!(frame.data[OFF_VERSION], 3, "repair carries the version");
}

#[test]
fn versioning_is_invisible_on_the_single_node_wire() {
    // Differential guard for the version field: a server that never went
    // through the cluster's versioned apply path (version 0 everywhere)
    // must emit frames byte-identical to the pre-versioning fixtures —
    // the same `udp_get_request.bin`/`udp_get_response.bin` pinned by
    // `udp_cornflakes_frames_match_fixtures` — with the version bytes
    // all zero. ReadMode::Any single-node traffic is exactly this path.
    let (mut client, mut server, cp_tap, sp_tap) = tapped_pair(SerKind::Cornflakes);
    server
        .store
        .preload(server.stack.ctx(), b"key-a", &[256])
        .unwrap();
    client.send_get(&[b"key-a"]);
    let req = capture("udp_get_request.bin", &sp_tap, &cp_tap);
    assert_eq!(&req[OFF_VERSION..OFF_VERSION + 8], &[0u8; 8]);
    server.poll();
    let reply = capture("udp_get_response.bin", &cp_tap, &sp_tap);
    assert_eq!(&reply[OFF_VERSION..OFF_VERSION + 8], &[0u8; 8]);
    client.recv_response().expect("reply decodes");
}

#[test]
fn tcp_segments_match_fixtures() {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (pa, pb) = link();
    let (a_tap, b_tap) = (pa.clone(), pb.clone());
    let mut a = TcpStack::new(sim.clone(), pa, 1000, SerializationConfig::hybrid());
    let mut b = TcpStack::new(sim, pb, 2000, SerializationConfig::hybrid());

    a.connect(2000).unwrap();
    capture("tcp_syn_segment.bin", &b_tap, &a_tap);
    b.poll().unwrap();
    capture("tcp_synack_segment.bin", &a_tap, &b_tap);
    a.poll().unwrap();
    b.poll().unwrap();
    assert!(a.is_established() && b.is_established());

    a.send_bytes(b"golden tcp payload").unwrap();
    capture("tcp_data_segment.bin", &b_tap, &a_tap);
    b.poll().unwrap();
    let msg = b.recv_msg().unwrap().expect("payload delivered");
    assert_eq!(msg.as_slice(), b"golden tcp payload");
}

#[test]
fn tcp_flow_control_segments_match_fixtures() {
    use cornflakes::net::{FlowConfig, TcpListener};

    // A zero-backlog listener fast-rejects the handshake with RST|ACK —
    // the flow-table overflow answer, pinned byte for byte.
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (cp, sp) = link();
    let (c_tap, s_tap) = (cp.clone(), sp.clone());
    let mut listener = TcpListener::new(
        sim.clone(),
        sp,
        9000,
        SerializationConfig::hybrid(),
        FlowConfig {
            syn_backlog: 0,
            ..FlowConfig::default()
        },
    );
    let mut client = TcpStack::new(sim, cp, 4000, SerializationConfig::hybrid());
    client.connect(9000).unwrap();
    listener.poll().unwrap();
    capture("tcp_rst_reject.bin", &c_tap, &s_tap);
    client.poll().unwrap();
    assert!(client.is_closed(), "RST closes the rejected initiator");
    assert_eq!(listener.stats().syn_overflow_rsts, 1);

    // Graceful teardown between two stacks: FIN, then the peer's
    // collapsed FIN|ACK.
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    let (pa, pb) = link();
    let (a_tap, b_tap) = (pa.clone(), pb.clone());
    let mut a = TcpStack::new(sim.clone(), pa, 1000, SerializationConfig::hybrid());
    let mut b = TcpStack::new(sim, pb, 2000, SerializationConfig::hybrid());
    a.connect(2000).unwrap();
    b.poll().unwrap();
    a.poll().unwrap();
    b.poll().unwrap();
    assert!(a.is_established() && b.is_established());

    a.close().unwrap();
    capture("tcp_fin_segment.bin", &b_tap, &a_tap);
    b.poll().unwrap();
    capture("tcp_finack_segment.bin", &a_tap, &b_tap);
    a.poll().unwrap();
    assert!(a.is_closed() && b.is_closed());
}

#[test]
fn single_queue_sharded_server_is_wire_identical_to_plain_server() {
    // Plain single-ring server.
    let (mut plain_client, mut plain_server, plain_cp_tap, plain_sp_tap) =
        tapped_pair(SerKind::Cornflakes);
    plain_server
        .store
        .preload(plain_server.stack.ctx(), b"key-a", &[256])
        .unwrap();
    plain_client.send_get(&[b"key-a"]);
    let req = plain_sp_tap.recv().expect("plain request");
    let plain_request = req.data.clone();
    plain_cp_tap.send(req);
    plain_server.poll();
    let plain_reply = plain_cp_tap.recv().expect("plain reply").data;

    // The same scenario through a single-queue ShardedKvServer with
    // steering enabled (one queue ⇒ the steering port is CLIENT_PORT).
    let (cp, sp) = link();
    let (cp_tap, sp_tap) = (cp.clone(), sp.clone());
    let mut server = ShardedKvServer::on_sims(
        vec![Sim::new(MachineProfile::tiny_for_tests())],
        sp,
        SerKind::Cornflakes,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    let client_stack = UdpStack::new(
        Sim::new(MachineProfile::tiny_for_tests()),
        cp,
        CLIENT_PORT,
        SerializationConfig::hybrid(),
    );
    let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
    client.enable_steering(&server.rss());
    assert_eq!(client.steer_ports(), &[CLIENT_PORT]);
    server.preload(b"key-a", &[256]).unwrap();
    client.send_get(&[b"key-a"]);
    let req = sp_tap.recv().expect("sharded request");
    assert_eq!(
        req.data, plain_request,
        "single-queue sharded client emits the identical request frame"
    );
    cp_tap.send(req);
    assert_eq!(server.poll(), 1);
    let sharded_reply = cp_tap.recv().expect("sharded reply").data;
    assert_eq!(
        sharded_reply, plain_reply,
        "single-queue sharded server emits the identical reply frame"
    );
    // The shared fixture: both paths must keep matching it.
    check_golden("udp_single_queue_reply.bin", &sharded_reply);
    sp_tap.send(Frame::new(sharded_reply));
    let resp = client.recv_response().expect("sharded reply decodes");
    assert_eq!(resp.vals.len(), 1);
}
