//! Split-brain consistency tests: versioned values, quorum reads, and
//! read-repair under switch partitions.
//!
//! The layer under test is the client-observed consistency contract:
//!
//! - Under [`ReadMode::Any`] a GET is served by whichever replica the
//!   failover machinery reaches first — after a split-brain partition
//!   that can be a replica that missed writes, so the *witness* test
//!   below pins a scenario (committed seed, deterministic schedule)
//!   where an Any-mode client provably reads stale data and the
//!   [`ConsistencyHistory`] checker flags it.
//! - Under [`ReadMode::Quorum`] the same scenario stays consistent: the
//!   read majority overlaps the write set, the highest-versioned reply
//!   wins, stale replicas get read-repaired, and when no majority is
//!   reachable the read times out rather than return stale data
//!   (consistent-but-unavailable).
//! - The property test drives randomized split-brain schedules
//!   (partition a victim from its peers mid-workload, keep writing,
//!   heal, let catch-up replay run) and requires every quorum-mode
//!   history to pass the read-your-writes / monotonic-reads checker.
//!
//! Case count for the property test is gated by `CF_CHAOS_CASES` like
//! the other chaos suites.

use proptest::prelude::*;

use cornflakes::chaos_repro;
use cornflakes::cluster::version;
use cornflakes::cluster::{Cluster, ClusterClient, ClusterConfig, ConsistencyHistory, ReadMode};
use cornflakes::kv::client::RetryConfig;
use cornflakes::kv::flags;
use cornflakes::kv::sharded::shard_of_key;
use cornflakes::mem::PoolConfig;
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{FlightRecorder, Telemetry};
use cornflakes::workloads::key_string;

const NODES: usize = 3;
const R: usize = 3;
const VALUE_BYTES: usize = 64;

fn chaos_cases() -> u32 {
    std::env::var("CF_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn build_cluster() -> Cluster {
    let sim = Sim::new(MachineProfile::tiny_for_tests());
    Cluster::new(
        sim,
        ClusterConfig {
            nodes: NODES,
            replication: R,
            pool: PoolConfig::small_for_tests(),
            ..ClusterConfig::default()
        },
    )
}

fn retry_cfg() -> RetryConfig {
    RetryConfig {
        timeout_ns: 120_000,
        max_retries: 6,
        max_backoff_ns: 500_000,
        jitter_seed: None,
    }
}

#[derive(Debug, PartialEq)]
enum Outcome {
    Answered {
        flags: u8,
        version: u64,
        vals: Vec<Vec<u8>>,
    },
    TimedOut,
}

/// Drives one request to its mandatory conclusion.
fn drive(cluster: &mut Cluster, client: &mut ClusterClient, id: u32) -> Outcome {
    for _round in 0..220 {
        cluster.poll();
        if let Some(resp) = client.recv_response() {
            assert_eq!(resp.id, Some(id), "tracking filters foreign responses");
            return Outcome::Answered {
                flags: resp.flags,
                version: resp.version,
                vals: resp.vals,
            };
        }
        cluster.sim().clock().advance(60_000);
        if client.poll_timers().contains(&id) {
            return Outcome::TimedOut;
        }
    }
    panic!("request {id} neither answered nor timed out");
}

/// Runs the cluster with no client traffic (probes, replication chatter,
/// read-repair deliveries, catch-up) for `rounds`.
fn idle(cluster: &mut Cluster, client: &mut ClusterClient, rounds: usize) {
    for _ in 0..rounds {
        cluster.poll();
        while client.kv.recv_response().is_some() {}
        cluster.sim().clock().advance(60_000);
        client.poll_timers();
    }
}

/// Splits `victim` from every other node (the clients stay connected to
/// both sides — that asymmetry is what makes stale reads reachable).
fn split_brain(cluster: &mut Cluster, victim: u8) {
    for n in 0..NODES as u8 {
        if n != victim {
            cluster.partition(victim, n);
        }
    }
}

fn heal_brain(cluster: &mut Cluster, victim: u8) {
    for n in 0..NODES as u8 {
        if n != victim {
            cluster.heal(victim, n);
        }
    }
}

/// Sets up the committed witness scenario and runs it up to the moment
/// of truth: key `K` written at version 1 everywhere, then a backup
/// (`replicas[1]`) split from its peers, then version 2 written on the
/// majority side. Returns `(cluster, client, key, replicas)` with the
/// client's history enabled and the split still in force.
fn witness_scenario(
    mode: ReadMode,
    history: &ConsistencyHistory,
) -> (Cluster, ClusterClient, Vec<u8>, Vec<u8>) {
    let mut cluster = build_cluster();
    let mut client = cluster.client();
    client.enable_retries_seeded(42, retry_cfg());
    client.set_read_mode(mode);
    client.set_history(history);

    let key = b"witness-key".to_vec();
    let replicas = cluster.map().replicas_for(&key, R);
    assert_eq!(replicas.len(), 3);

    // Probes establish, then version 1 lands on all three replicas.
    idle(&mut cluster, &mut client, 6);
    let id = client.send_put(&key, &[0xA1; VALUE_BYTES]);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered { flags: 0, .. } => {}
        other => panic!("v1 put should ack cleanly, got {other:?}"),
    }

    // Split a backup from its peers; survivors detect it, the victim
    // detects the survivors (both sides need the probe misses).
    let victim = replicas[1];
    split_brain(&mut cluster, victim);
    idle(&mut cluster, &mut client, 40);
    let observer = replicas[0];
    assert!(
        !cluster.nodes[observer as usize].peer_alive(victim),
        "survivors see the victim down"
    );

    // Version 2: acked by the majority side, invisible to the victim.
    let id = client.send_put(&key, &[0xB2; VALUE_BYTES]);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0, version, ..
        } if version::counter(version) == 2 => {}
        other => panic!("v2 put should ack cleanly at counter 2, got {other:?}"),
    }
    (cluster, client, key, replicas)
}

#[test]
fn any_mode_witness_serves_a_stale_read_after_split_brain() {
    let history = ConsistencyHistory::with_capacity(64);
    let (mut cluster, mut client, key, replicas) = witness_scenario(ReadMode::Any, &history);
    let (primary, _victim, other) = (replicas[0], replicas[1], replicas[2]);

    // The client observes version 2 from the majority side first...
    let id = client.send_get(&key);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0, version, ..
        } if version::counter(version) == 2 => {}
        other => panic!("fresh get sees counter 2, got {other:?}"),
    }

    // ...then loses its links to both fresh replicas. Only the stale
    // victim is reachable; Any-mode failover dutifully rotates to it.
    let client_host = client.host;
    cluster.partition(client_host, primary);
    cluster.partition(client_host, other);
    let id = client.send_get(&key);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0,
            version,
            vals,
        } => {
            assert_eq!(
                version::counter(version),
                1,
                "the victim serves its pre-split version"
            );
            assert_eq!(vals, vec![vec![0xA1; VALUE_BYTES]], "stale bytes");
        }
        other => panic!("the victim answers the rotated get, got {other:?}"),
    }
    assert!(
        client.failovers() >= 1,
        "the stale read arrived via failover"
    );

    // The history checker catches exactly this: a read that went
    // backwards past an already-observed version.
    let violations = history.check();
    assert!(
        !violations.is_empty(),
        "Any-mode split-brain read must violate monotonicity"
    );
    assert_eq!(version::counter(violations[0].saw), 1);
    assert_eq!(version::counter(violations[0].floor), 2);
}

#[test]
fn quorum_mode_witness_stays_consistent_and_read_repairs() {
    let history = ConsistencyHistory::with_capacity(64);
    let (mut cluster, mut client, key, replicas) = witness_scenario(ReadMode::Quorum, &history);
    let tele = Telemetry::attach(cluster.sim());
    client.set_telemetry(&tele);
    let (primary, victim, other) = (replicas[0], replicas[1], replicas[2]);

    // Quorum read during the split: the majority fan-out includes the
    // stale victim (replicas[1]) and the fresh primary. The read returns
    // version 2 and pushes a read-repair at the victim.
    let id = client.send_get(&key);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0,
            version,
            vals,
        } if version::counter(version) == 2 => {
            assert_eq!(vals, vec![vec![0xB2; VALUE_BYTES]]);
        }
        o => panic!("quorum read returns the newest version, got {o:?}"),
    }
    assert_eq!(client.quorum_reads(), 1);
    assert!(client.read_repairs() >= 1, "the stale victim got repaired");
    assert_eq!(
        tele.counter("cluster.client.read_repairs").get(),
        client.read_repairs(),
        "counter mirrors the getter"
    );

    // The repair is a plain versioned REPL_PUT: the victim applies it
    // even though it still can't see its peers.
    idle(&mut cluster, &mut client, 6);
    let q = shard_of_key(&key, cluster.nodes[victim as usize].server.num_shards());
    assert_eq!(
        version::counter(cluster.nodes[victim as usize].server.shards()[q].version_of(&key)),
        2,
        "read-repair brought the victim to version 2"
    );

    // Cut the client off from the majority: a quorum is no longer
    // reachable, so the read times out instead of returning anything —
    // consistent-but-unavailable, never stale.
    let client_host = client.host;
    cluster.partition(client_host, primary);
    cluster.partition(client_host, other);
    let id = client.send_get(&key);
    assert_eq!(
        drive(&mut cluster, &mut client, id),
        Outcome::TimedOut,
        "no majority reachable: quorum reads fail rather than lie"
    );

    // Heal everything; catch-up replay and the repaired store agree.
    cluster.heal(client_host, primary);
    cluster.heal(client_host, other);
    heal_brain(&mut cluster, victim);
    idle(&mut cluster, &mut client, 60);
    let id = client.send_get(&key);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0, version, ..
        } if version::counter(version) == 2 => {}
        o => panic!("post-heal quorum read sees version 2, got {o:?}"),
    }

    let violations = history.check();
    assert!(
        violations.is_empty(),
        "quorum history must be consistent, got {violations:?}"
    );
    assert_eq!(
        tele.counter("cluster.client.quorum_reads").get(),
        client.quorum_reads()
    );
}

/// Satellite fix regression: a node that is *partitioned from the
/// client* (but alive) is treated like a dead one at routing time —
/// its breaker opens and routes skip it — and once its frames flow
/// again while the breaker is still open, the client surfaces the
/// contradiction as `cluster.client.partition_suspects` instead of
/// counting it as yet another failover.
#[test]
fn partitioned_but_alive_node_is_reported_as_partition_suspect() {
    use cornflakes::kv::overload::BreakerState;

    let mut cluster = build_cluster();
    let mut client = cluster.client();
    client.enable_retries_seeded(7, retry_cfg());
    let tele = Telemetry::attach(cluster.sim());
    client.set_telemetry(&tele);

    let key = b"suspect-key".to_vec();
    let replicas = cluster.map().replicas_for(&key, R);
    let (primary, b1, b2) = (replicas[0], replicas[1], replicas[2]);

    idle(&mut cluster, &mut client, 6);
    let id = client.send_put(&key, &[0x11; VALUE_BYTES]);
    assert!(matches!(
        drive(&mut cluster, &mut client, id),
        Outcome::Answered { flags: 0, .. }
    ));

    // The client loses its link to the primary (which stays alive and
    // replicated). Two failed-over gets open the primary's breaker:
    // partitioned-but-alive is treated exactly like dead for routing.
    let client_host = client.host;
    cluster.partition(client_host, primary);
    for _ in 0..2 {
        let id = client.send_get(&key);
        assert!(matches!(
            drive(&mut cluster, &mut client, id),
            Outcome::Answered { flags: 0, .. }
        ));
    }
    assert!(client.failovers() >= 2, "each get rotated off the primary");
    assert_eq!(
        client.breaker_state(primary),
        BreakerState::Open,
        "unreachable primary is routed around, like a dead node"
    );
    assert_eq!(client.partition_suspects(), 0, "no contradiction yet");

    // Link restored — and both backups killed, so the route has nowhere
    // to go but the breaker-open primary. Its answer is the proof of
    // partition: requests kept failing while the switch delivers fine.
    cluster.heal(client_host, primary);
    cluster.kill(b1);
    cluster.kill(b2);
    let id = client.send_get(&key);
    assert!(matches!(
        drive(&mut cluster, &mut client, id),
        Outcome::Answered { flags: 0, .. }
    ));
    assert!(
        client.partition_suspects() >= 1,
        "a reply from a breaker-open node is a partition suspect"
    );
    assert_eq!(
        tele.counter("cluster.client.partition_suspects").get(),
        client.partition_suspects()
    );
}

/// Review-pinned regression: a put retransmit that dedup-hits AFTER its
/// pending entry is gone (acked and forgotten) must re-forward under
/// the version originally minted for that request id — never a
/// re-derived `version_of(key)`, which can belong to a newer put — and
/// must not append a duplicate replay-log entry. Otherwise a replica
/// that missed both writes can end up holding the OLD payload at the
/// NEWEST version, and the strictly-newer apply guard then rejects the
/// real newest value forever.
#[test]
fn late_put_retransmit_reforwards_under_its_original_version() {
    let mut cluster = build_cluster();
    let mut client = cluster.client();
    client.enable_retries_seeded(23, retry_cfg());

    let key = b"witness-key".to_vec();
    let replicas = cluster.map().replicas_for(&key, R);
    let (coordinator, victim) = (replicas[0], replicas[1]);

    // v1 lands everywhere (req id 1 — the client's first request)...
    idle(&mut cluster, &mut client, 6);
    let id = client.send_put(&key, &[0xA1; VALUE_BYTES]);
    assert!(matches!(
        drive(&mut cluster, &mut client, id),
        Outcome::Answered { flags: 0, .. }
    ));

    // ...then the victim is split off and v2 lands on the majority only.
    split_brain(&mut cluster, victim);
    idle(&mut cluster, &mut client, 40);
    let id = client.send_put(&key, &[0xB2; VALUE_BYTES]);
    assert!(matches!(
        drive(&mut cluster, &mut client, id),
        Outcome::Answered { flags: 0, .. }
    ));
    let log_before = cluster.nodes[coordinator as usize].log_len();

    // A second client replays the FIRST put byte-for-byte: fresh clients
    // allocate request ids from 1, so this is exactly a late client
    // retransmit arriving after the coordinator acked and dropped the
    // pending entry (dedup hit, pending gone).
    let mut late = cluster.client();
    late.enable_retries_seeded(29, retry_cfg());
    let id = late.send_put(&key, &[0xA1; VALUE_BYTES]);
    assert!(matches!(
        drive(&mut cluster, &mut late, id),
        Outcome::Answered { flags: 0, .. }
    ));
    assert_eq!(
        cluster.nodes[coordinator as usize].log_len(),
        log_before,
        "a dedup-hit retransmit must not re-log the old payload"
    );

    // Heal; catch-up replay runs. The victim — which missed v2 and the
    // retransmit — must converge to v2's bytes at v2's version: the old
    // payload was never re-stamped with a newer version anywhere.
    heal_brain(&mut cluster, victim);
    idle(&mut cluster, &mut client, 80);
    let q = shard_of_key(&key, cluster.nodes[victim as usize].server.num_shards());
    let victim_version = cluster.nodes[victim as usize].server.shards()[q].version_of(&key);
    assert_eq!(
        version::counter(victim_version),
        2,
        "catch-up brought the victim to the v2 counter"
    );
    let id = client.send_get(&key);
    match drive(&mut cluster, &mut client, id) {
        Outcome::Answered {
            flags: 0,
            version,
            vals,
        } => {
            assert_eq!(version::counter(version), 2);
            assert_eq!(
                vals,
                vec![vec![0xB2; VALUE_BYTES]],
                "the newest bytes survive the late retransmit"
            );
        }
        other => panic!("post-heal get, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Randomized split-brain schedules: partition a victim mid-workload,
    /// keep writing, heal, let catch-up run — every quorum-mode history
    /// must satisfy read-your-writes and monotonic reads.
    #[test]
    fn quorum_histories_stay_consistent_through_split_brain(
        seed in any::<u64>(),
        victim in 0u8..NODES as u8,
        partition_at in 2usize..5,
        heal_offset in 4usize..9,
        ops in proptest::collection::vec(any::<bool>(), 12..20),
    ) {
        let flight = FlightRecorder::with_capacity(4096);
        let params = [
            ("victim", victim.to_string()),
            ("partition_at", partition_at.to_string()),
            ("heal_offset", heal_offset.to_string()),
            ("ops", ops.iter().map(|&p| if p { 'P' } else { 'G' }).collect()),
        ];
        let flight_for_guard = flight.clone();
        chaos_repro::guard(
            "cluster_consistency::quorum_histories_stay_consistent_through_split_brain",
            seed,
            &params,
            &flight_for_guard,
            move || run_quorum_case(seed, victim, partition_at, heal_offset, &ops, flight),
        );
    }
}

fn run_quorum_case(
    seed: u64,
    victim: u8,
    partition_at: usize,
    heal_offset: usize,
    ops: &[bool],
    flight: FlightRecorder,
) {
    const NUM_KEYS: u64 = 6;
    let mut cluster = build_cluster();
    cluster.set_flight_recorder(&flight);
    let mut client = cluster.client();
    client.set_flight_recorder(&flight);
    client.enable_retries_seeded(seed, retry_cfg());
    client.set_read_mode(ReadMode::Quorum);
    let history = ConsistencyHistory::with_capacity(256);
    client.set_history(&history);

    let keys: Vec<Vec<u8>> = (0..NUM_KEYS).map(|i| key_string(i).into_bytes()).collect();
    for key in &keys {
        cluster.preload(key, &[VALUE_BYTES]);
    }
    idle(&mut cluster, &mut client, 6);

    let heal_at = partition_at + heal_offset;
    let mut answered = 0u64;
    let mut timeouts = 0u64;
    let mut rng = seed;
    let mut next = move || {
        // splitmix64: deterministic per-case op placement.
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for (op_idx, &is_put) in ops.iter().enumerate() {
        if op_idx == partition_at {
            split_brain(&mut cluster, victim);
        }
        if op_idx == heal_at {
            heal_brain(&mut cluster, victim);
        }
        let key = keys[(next() % NUM_KEYS) as usize].clone();
        let id = if is_put {
            client.send_put(&key, &[op_idx as u8 ^ 0xC3; VALUE_BYTES])
        } else {
            client.send_get(&key)
        };
        match drive(&mut cluster, &mut client, id) {
            Outcome::Answered { .. } => answered += 1,
            Outcome::TimedOut => timeouts += 1,
        }
    }
    prop_assert_eq!(answered + timeouts, ops.len() as u64);
    prop_assert!(client.kv.pending_ids().is_empty());

    // Heal (idempotent if the schedule already healed), let catch-up
    // replay finish, then read every key once more at quorum.
    heal_brain(&mut cluster, victim);
    idle(&mut cluster, &mut client, 60);
    for key in &keys {
        let id = client.send_get(key);
        match drive(&mut cluster, &mut client, id) {
            Outcome::Answered { flags: f, .. } => {
                prop_assert_eq!(f & flags::SHED, 0, "post-heal reads are served");
            }
            Outcome::TimedOut => prop_assert!(false, "post-heal quorum read timed out"),
        }
    }

    let violations = history.check();
    prop_assert!(
        violations.is_empty(),
        "quorum history violated session guarantees: {:?}",
        violations
    );
    prop_assert_eq!(history.dropped(), 0, "history ring sized for the workload");
}
