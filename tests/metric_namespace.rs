//! Metric-namespace conformance: the DESIGN.md table is the registry.
//!
//! Drives the full stack — steered client, sharded server, plain server,
//! fault layer, memory stats — with telemetry attached, then asserts that
//! every metric name actually registered (a) follows the naming
//! conventions (lowercase dotted path under a known layer prefix) and
//! (b) normalizes to a row of the "Metric namespace" table in DESIGN.md.
//! A metric added to the code without a documented row fails this test.

use std::collections::BTreeSet;
use std::fs;

use cornflakes::cluster::{Cluster, ClusterConfig};
use cornflakes::core::SerializationConfig;
use cornflakes::kv::client::{KvClient, RetryConfig, CLIENT_PORT, SERVER_PORT};
use cornflakes::kv::server::{KvServer, SerKind};
use cornflakes::kv::sharded::ShardedKvServer;
use cornflakes::mem::PoolConfig;
use cornflakes::net::UdpStack;
use cornflakes::nic::{link, FaultPlan};
use cornflakes::sim::{MachineProfile, Sim};
use cornflakes::telemetry::{json, Telemetry};
use cornflakes::workloads::key_string;

/// Registers as much of the stack as possible into one registry and
/// returns every metric name present in the snapshot.
fn registered_metric_names() -> BTreeSet<String> {
    // Sharded server (kv.shardN.*, nic.*, nic.qN.*) + steered client
    // (kv.client.*, net.udp.*, mem.*).
    let queues = 2;
    let sims: Vec<Sim> = (0..queues)
        .map(|_| Sim::new(MachineProfile::tiny_for_tests()))
        .collect();
    let (cp, sp) = link();
    let mut server = ShardedKvServer::on_sims(
        sims,
        sp,
        SerKind::Cornflakes,
        SerializationConfig::hybrid(),
        PoolConfig::small_for_tests(),
    );
    let client_sim = Sim::new(MachineProfile::tiny_for_tests());
    let client_stack = UdpStack::new(
        client_sim.clone(),
        cp,
        CLIENT_PORT,
        SerializationConfig::hybrid(),
    );
    let mut client = KvClient::new(client_stack, SerKind::Cornflakes);
    client.enable_steering(&server.rss());

    let tele = Telemetry::attach(&client_sim);
    server.set_telemetry(&tele);
    client.set_telemetry(&tele);
    client.enable_retries(RetryConfig::default());
    let faults = server.install_faults(FaultPlan::seeded(7).with_drop(0.01));
    faults.install_telemetry(&tele, "srv_rx");
    // The e2e latency histogram the tail-anatomy harness and the
    // trace_request example register.
    tele.histogram("kv.client.e2e_latency_ns").record(1);

    // A plain single-SerKind server contributes the kv.cornflakes.* scope.
    let plain_sim = Sim::new(MachineProfile::tiny_for_tests());
    let (_c2, s2) = link();
    let plain_stack = UdpStack::new(plain_sim, s2, SERVER_PORT, SerializationConfig::hybrid());
    let mut plain = KvServer::new(plain_stack, SerKind::Cornflakes);
    plain.set_telemetry(&tele);

    // Light traffic so dynamic registrations (if any) fire too.
    server
        .preload(key_string(1).as_bytes(), &[64])
        .expect("preload");
    for _ in 0..4 {
        let key = key_string(1);
        client.send_get(&[key.as_bytes()]);
        server.poll();
        while client.recv_response().is_some() {}
    }

    // TCP layer: a flow-table listener serving KV over TCP registers the
    // net.tcp.listen.* / net.tcp.flow.* / kv.tcp.* scopes, and a client
    // stack the net.tcp.* scope.
    let tcp_sim = Sim::new(MachineProfile::tiny_for_tests());
    let (tc, ts) = link();
    let tcp_listener = cornflakes::net::TcpListener::new(
        tcp_sim.clone(),
        ts,
        SERVER_PORT,
        SerializationConfig::hybrid(),
        cornflakes::net::FlowConfig::default(),
    );
    let mut tcp_server = cornflakes::kv::tcp_server::TcpKvServer::new(tcp_listener);
    tcp_server.set_telemetry(&tele);
    let mut tcp_client =
        cornflakes::net::TcpStack::new(tcp_sim, tc, CLIENT_PORT, SerializationConfig::hybrid());
    tcp_client.set_telemetry(&tele);

    // Cluster layer: switch drop counters, per-node protocol counters,
    // and the cluster client's failover counter (cluster.*). The nodes'
    // own kv.*/nic.* scopes stay unregistered here — in multi-node runs
    // those use per-node registries.
    let cluster_sim = Sim::new(MachineProfile::tiny_for_tests());
    let mut cluster = Cluster::new(
        cluster_sim,
        ClusterConfig {
            pool: PoolConfig::small_for_tests(),
            ..ClusterConfig::default()
        },
    );
    cluster.set_telemetry(&tele);
    let mut cluster_client = cluster.client();
    cluster_client.set_telemetry(&tele);

    let snapshot = tele.snapshot_json();
    let doc = json::parse(&snapshot).expect("snapshot is valid JSON");
    let mut names = BTreeSet::new();
    for section in ["counters", "gauges", "histograms"] {
        let obj = doc
            .get(section)
            .unwrap_or_else(|| panic!("snapshot has {section}"))
            .as_obj()
            .expect("section is an object");
        for (name, _) in obj {
            names.insert(name.clone());
        }
    }
    names
}

/// The metric names documented in DESIGN.md's "Metric namespace" table:
/// every backticked token in the first column of its rows.
fn documented_names() -> BTreeSet<String> {
    let design = fs::read_to_string("DESIGN.md").expect("DESIGN.md readable");
    let section = design
        .split("### Metric namespace")
        .nth(1)
        .expect("DESIGN.md has a '### Metric namespace' section");
    let section = section.split("\n### ").next().unwrap();
    let mut names = BTreeSet::new();
    for line in section.lines() {
        if !line.starts_with("| `") {
            continue;
        }
        let first_cell = line.trim_start_matches('|').split('|').next().unwrap();
        // Backtick-delimited tokens sit at the odd positions of the split.
        for (i, token) in first_cell.split('`').enumerate() {
            if i % 2 == 1 {
                names.insert(token.to_string());
            }
        }
    }
    assert!(
        names.len() > 40,
        "table parse found only {} names — format drift?",
        names.len()
    );
    names
}

/// Maps a concrete registered name onto the table's placeholder spelling.
fn normalize(name: &str) -> String {
    let segs: Vec<&str> = name.split('.').collect();
    let mut out: Vec<String> = Vec::new();
    for (i, seg) in segs.iter().enumerate() {
        let is_queue = seg
            .strip_prefix('q')
            .is_some_and(|r| !r.is_empty() && r.bytes().all(|b| b.is_ascii_digit()));
        let is_shard = seg
            .strip_prefix("shard")
            .is_some_and(|r| !r.is_empty() && r.bytes().all(|b| b.is_ascii_digit()));
        if segs[0] == "nic" && i == 1 && is_queue {
            continue; // nic.qN.x rows are documented via their nic.x form
        }
        if segs[0] == "kv"
            && i == 1
            && (is_shard
                || matches!(
                    *seg,
                    "cornflakes" | "protobuf" | "flatbuffers" | "capnproto"
                ))
        {
            out.push("<server>".to_string());
            continue;
        }
        if segs[0] == "fault" && i == 1 {
            out.push("<dir>".to_string());
            continue;
        }
        let is_node = seg
            .strip_prefix("node")
            .is_some_and(|r| !r.is_empty() && r.bytes().all(|b| b.is_ascii_digit()));
        if segs[0] == "cluster" && i == 1 && is_node {
            out.push("<node>".to_string());
            continue;
        }
        out.push((*seg).to_string());
    }
    out.join(".")
}

#[test]
fn every_registered_metric_is_documented_and_well_formed() {
    let registered = registered_metric_names();
    assert!(
        registered.len() > 30,
        "expected a full-stack registry, got {} metrics",
        registered.len()
    );
    let documented = documented_names();

    let layers = ["nic", "net", "kv", "mem", "fault", "cluster"];
    let mut missing = Vec::new();
    for name in &registered {
        assert!(
            name.bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_'),
            "{name}: metric names are lowercase [a-z0-9_.]"
        );
        assert!(
            !name.starts_with('.') && !name.ends_with('.') && !name.contains(".."),
            "{name}: malformed dotted path"
        );
        let layer = name.split('.').next().unwrap();
        assert!(
            layers.contains(&layer),
            "{name}: unknown layer prefix {layer} (expected one of {layers:?})"
        );
        let norm = normalize(name);
        if !documented.contains(&norm) {
            missing.push(format!("{name} (normalized: {norm})"));
        }
    }
    assert!(
        missing.is_empty(),
        "metrics registered but absent from DESIGN.md's metric-namespace table:\n  {}",
        missing.join("\n  ")
    );

    // The quorum-read path's counters are part of the registry contract:
    // attaching a cluster client must surface all of them.
    for required in [
        "cluster.client.failovers",
        "cluster.client.quorum_reads",
        "cluster.client.read_repairs",
        "cluster.client.partition_suspects",
    ] {
        assert!(
            registered.contains(required),
            "{required} not registered by ClusterClient::set_telemetry"
        );
    }
}

#[test]
fn normalization_maps_scopes_onto_table_placeholders() {
    assert_eq!(normalize("nic.q3.tx_frames"), "nic.tx_frames");
    assert_eq!(normalize("nic.tx_frames"), "nic.tx_frames");
    assert_eq!(normalize("kv.shard0.requests"), "kv.<server>.requests");
    assert_eq!(normalize("kv.cornflakes.backlog"), "kv.<server>.backlog");
    assert_eq!(normalize("kv.client.retries"), "kv.client.retries");
    assert_eq!(normalize("fault.b_rx.drops"), "fault.<dir>.drops");
    assert_eq!(normalize("mem.pool.occupancy"), "mem.pool.occupancy");
    assert_eq!(
        normalize("cluster.node2.repl_puts"),
        "cluster.<node>.repl_puts"
    );
    assert_eq!(
        normalize("cluster.switch.forwarded"),
        "cluster.switch.forwarded"
    );
    assert_eq!(
        normalize("cluster.client.failovers"),
        "cluster.client.failovers"
    );
    assert_eq!(
        normalize("cluster.client.quorum_reads"),
        "cluster.client.quorum_reads"
    );
    assert_eq!(
        normalize("cluster.client.partition_suspects"),
        "cluster.client.partition_suspects"
    );
}
